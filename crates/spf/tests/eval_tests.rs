//! Evaluator tests: a mock-DNS harness drives the resumable state machine
//! to completion, recording the order in which questions were asked —
//! which is exactly the observable the paper's authoritative server logs.

use mailval_dns::resolver::ResolveOutcome;
use mailval_dns::rr::{RData, RecordType};
use mailval_dns::{Name, Record};
use mailval_spf::eval::MultiRecordPolicy;
use mailval_spf::{DnsQuestion, EvalParams, EvalStep, SpfBehavior, SpfEvaluator, SpfResult};
use std::collections::HashMap;
use std::net::IpAddr;

fn n(s: &str) -> Name {
    Name::parse(s).unwrap()
}

/// Mock DNS: a map from (name, rtype) to an outcome; anything absent is
/// NXDOMAIN.
#[derive(Default)]
struct MockDns {
    map: HashMap<(Name, RecordType), ResolveOutcome>,
}

impl MockDns {
    fn txt(&mut self, name: &str, value: &str) -> &mut Self {
        let rec = Record::new(n(name), 300, RData::txt_from_str(value));
        match self
            .map
            .entry((n(name), RecordType::Txt))
            .or_insert_with(|| ResolveOutcome::Records(Vec::new()))
        {
            ResolveOutcome::Records(v) => v.push(rec),
            _ => panic!(),
        }
        self
    }

    fn a(&mut self, name: &str, ip: &str) -> &mut Self {
        let rec = Record::new(n(name), 300, RData::A(ip.parse().unwrap()));
        match self
            .map
            .entry((n(name), RecordType::A))
            .or_insert_with(|| ResolveOutcome::Records(Vec::new()))
        {
            ResolveOutcome::Records(v) => v.push(rec),
            _ => panic!(),
        }
        self
    }

    fn aaaa(&mut self, name: &str, ip: &str) -> &mut Self {
        let rec = Record::new(n(name), 300, RData::Aaaa(ip.parse().unwrap()));
        match self
            .map
            .entry((n(name), RecordType::Aaaa))
            .or_insert_with(|| ResolveOutcome::Records(Vec::new()))
        {
            ResolveOutcome::Records(v) => v.push(rec),
            _ => panic!(),
        }
        self
    }

    fn mx(&mut self, name: &str, pref: u16, exchange: &str) -> &mut Self {
        let rec = Record::new(
            n(name),
            300,
            RData::Mx {
                preference: pref,
                exchange: n(exchange),
            },
        );
        match self
            .map
            .entry((n(name), RecordType::Mx))
            .or_insert_with(|| ResolveOutcome::Records(Vec::new()))
        {
            ResolveOutcome::Records(v) => v.push(rec),
            _ => panic!(),
        }
        self
    }

    fn ptr(&mut self, name: &str, target: &str) -> &mut Self {
        let rec = Record::new(n(name), 300, RData::Ptr(n(target)));
        match self
            .map
            .entry((n(name), RecordType::Ptr))
            .or_insert_with(|| ResolveOutcome::Records(Vec::new()))
        {
            ResolveOutcome::Records(v) => v.push(rec),
            _ => panic!(),
        }
        self
    }

    fn fail(&mut self, name: &str, rtype: RecordType, outcome: ResolveOutcome) -> &mut Self {
        self.map.insert((n(name), rtype), outcome);
        self
    }

    fn lookup(&self, q: &DnsQuestion) -> ResolveOutcome {
        self.map
            .get(&(q.name.clone(), q.rtype))
            .cloned()
            .unwrap_or(ResolveOutcome::NxDomain)
    }
}

fn params(ip: &str, domain: &str) -> EvalParams {
    EvalParams {
        ip: ip.parse::<IpAddr>().unwrap(),
        domain: n(domain),
        sender_local: "spf-test".into(),
        sender_domain: n(domain),
        helo: "probe.dns-lab.org".into(),
    }
}

/// Drive an evaluator to completion against the mock, returning the final
/// evaluation and the ordered list of questions asked.
fn run(
    dns: &MockDns,
    params: EvalParams,
    behavior: SpfBehavior,
) -> (mailval_spf::eval::SpfEvaluation, Vec<DnsQuestion>) {
    let mut ev = SpfEvaluator::new(params, behavior);
    let mut asked = Vec::new();
    let mut step = ev.start();
    for _ in 0..500 {
        match step {
            EvalStep::Done(done) => return (done, asked),
            EvalStep::NeedLookups(questions) => {
                assert!(!questions.is_empty(), "evaluator stalled with no questions");
                let answers: Vec<(DnsQuestion, ResolveOutcome)> = questions
                    .iter()
                    .map(|q| {
                        asked.push(q.clone());
                        (q.clone(), dns.lookup(q))
                    })
                    .collect();
                step = ev.resume(answers);
            }
        }
    }
    panic!("evaluation did not converge");
}

fn strict() -> SpfBehavior {
    SpfBehavior::default()
}

// ---------------------------------------------------------------------------
// Basic results
// ---------------------------------------------------------------------------

#[test]
fn no_record_gives_none() {
    let dns = MockDns::default();
    let (eval, asked) = run(&dns, params("192.0.2.1", "nospf.test"), strict());
    assert_eq!(eval.result, SpfResult::None);
    assert_eq!(asked.len(), 1);
    assert_eq!(asked[0].rtype, RecordType::Txt);
}

#[test]
fn ip4_match_passes() {
    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 ip4:192.0.2.0/24 -all");
    let (eval, _) = run(&dns, params("192.0.2.55", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::Pass);
}

#[test]
fn ip4_nonmatch_hits_minus_all() {
    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 ip4:192.0.2.0/24 -all");
    let (eval, _) = run(&dns, params("198.51.100.1", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::Fail);
    assert_eq!(eval.matched_term.as_deref(), Some("all"));
}

#[test]
fn qualifier_variants() {
    for (policy, expect) in [
        ("v=spf1 ~all", SpfResult::SoftFail),
        ("v=spf1 ?all", SpfResult::Neutral),
        ("v=spf1 +all", SpfResult::Pass),
        ("v=spf1 -all", SpfResult::Fail),
        ("v=spf1", SpfResult::Neutral), // no mechanism matched → default
    ] {
        let mut dns = MockDns::default();
        dns.txt("d.test", policy);
        let (eval, _) = run(&dns, params("192.0.2.1", "d.test"), strict());
        assert_eq!(eval.result, expect, "{policy}");
    }
}

#[test]
fn ip6_mechanism() {
    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 ip6:2001:db8::/32 -all");
    let (eval, _) = run(&dns, params("2001:db8::99", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::Pass);
    let (eval, _) = run(&dns, params("2001:db9::99", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::Fail);
    // ip6 never matches a v4 client.
    let (eval, _) = run(&dns, params("192.0.2.1", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::Fail);
}

// ---------------------------------------------------------------------------
// a / mx / exists / ptr mechanisms
// ---------------------------------------------------------------------------

#[test]
fn a_mechanism_matches_v4() {
    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 a:mail.d.test -all")
        .a("mail.d.test", "192.0.2.9");
    let (eval, asked) = run(&dns, params("192.0.2.9", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::Pass);
    assert_eq!(asked[1].rtype, RecordType::A);
    assert_eq!(eval.dns_mechanism_terms, 1);
}

#[test]
fn a_mechanism_uses_aaaa_for_v6_client() {
    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 a:mail.d.test -all")
        .aaaa("mail.d.test", "2001:db8::9");
    let (eval, asked) = run(&dns, params("2001:db8::9", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::Pass);
    assert_eq!(asked[1].rtype, RecordType::Aaaa);
}

#[test]
fn a_mechanism_bare_uses_current_domain() {
    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 a -all").a("d.test", "192.0.2.7");
    let (eval, asked) = run(&dns, params("192.0.2.7", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::Pass);
    assert_eq!(asked[1].name, n("d.test"));
}

#[test]
fn a_mechanism_cidr() {
    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 a:mail.d.test/24 -all")
        .a("mail.d.test", "192.0.2.1");
    let (eval, _) = run(&dns, params("192.0.2.200", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::Pass);
}

#[test]
fn mx_mechanism_walks_exchanges_in_preference_order() {
    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 mx -all")
        .mx("d.test", 20, "mx2.d.test")
        .mx("d.test", 10, "mx1.d.test")
        .a("mx1.d.test", "198.51.100.1")
        .a("mx2.d.test", "192.0.2.2");
    let (eval, asked) = run(&dns, params("192.0.2.2", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::Pass);
    // TXT, MX, then addresses in preference order.
    assert_eq!(asked[1].rtype, RecordType::Mx);
    assert_eq!(asked[2].name, n("mx1.d.test"));
    assert_eq!(asked[3].name, n("mx2.d.test"));
}

#[test]
fn mx_limit_enforced_at_10() {
    // The paper's 20-MX test policy (§7.3): compliant validators permerror
    // after 10 address lookups.
    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 mx -all");
    for i in 0..20 {
        dns.mx("d.test", i as u16, &format!("mx{i}.d.test"));
        dns.a(&format!("mx{i}.d.test"), "198.51.100.9");
    }
    let (eval, asked) = run(&dns, params("192.0.2.1", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::PermError);
    // TXT + MX + 10 address lookups.
    assert_eq!(asked.len(), 12);
}

#[test]
fn mx_limit_violator_queries_all_20() {
    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 mx -all");
    for i in 0..20 {
        dns.mx("d.test", i as u16, &format!("mx{i}.d.test"));
        dns.a(&format!("mx{i}.d.test"), "198.51.100.9");
    }
    let behavior = SpfBehavior {
        enforce_mx_limit: false,
        enforce_void_limit: false,
        ..strict()
    };
    let (eval, asked) = run(&dns, params("192.0.2.1", "d.test"), behavior);
    assert_eq!(eval.result, SpfResult::Fail); // no match → -all
    assert_eq!(asked.len(), 22); // TXT + MX + 20 addresses
}

#[test]
fn mx_nonexistent_no_fallback_by_default() {
    // RFC 7208 §5.4 explicitly forbids the A fallback after failed MX.
    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 mx:gone.test ?all");
    let (eval, asked) = run(&dns, params("192.0.2.1", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::Neutral);
    assert_eq!(asked.len(), 2); // TXT + MX only — no A lookup
    assert_eq!(eval.void_lookups, 1);
}

#[test]
fn mx_fallback_violator_issues_a_lookup() {
    // 14% of measured MTAs do this (§7.3).
    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 mx:gone.test ?all");
    let behavior = SpfBehavior {
        mx_fallback_a_lookup: true,
        ..strict()
    };
    let (_, asked) = run(&dns, params("192.0.2.1", "d.test"), behavior);
    assert_eq!(asked.len(), 3);
    assert_eq!(asked[2].rtype, RecordType::A);
    assert_eq!(asked[2].name, n("gone.test"));
}

#[test]
fn exists_mechanism() {
    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 exists:%{ir}.sp.d.test -all")
        .a("1.2.0.192.sp.d.test", "127.0.0.2");
    let (eval, asked) = run(&dns, params("192.0.2.1", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::Pass);
    assert_eq!(asked[1].name, n("1.2.0.192.sp.d.test"));
    assert_eq!(asked[1].rtype, RecordType::A);
}

#[test]
fn ptr_mechanism_forward_confirmed() {
    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 ptr -all")
        .ptr("1.2.0.192.in-addr.arpa", "host.d.test")
        .a("host.d.test", "192.0.2.1");
    let (eval, asked) = run(&dns, params("192.0.2.1", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::Pass);
    assert_eq!(asked[1].rtype, RecordType::Ptr);
    assert_eq!(asked[2].name, n("host.d.test"));
}

#[test]
fn ptr_mechanism_rejects_unconfirmed() {
    let mut dns = MockDns::default();
    // PTR names to a host whose A record is a different address.
    dns.txt("d.test", "v=spf1 ptr ?all")
        .ptr("1.2.0.192.in-addr.arpa", "host.d.test")
        .a("host.d.test", "198.51.100.1");
    let (eval, _) = run(&dns, params("192.0.2.1", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::Neutral);
}

#[test]
fn ptr_mechanism_requires_target_subdomain() {
    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 ptr:other.test ?all")
        .ptr("1.2.0.192.in-addr.arpa", "host.d.test")
        .a("host.d.test", "192.0.2.1");
    let (eval, _) = run(&dns, params("192.0.2.1", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::Neutral);
}

// ---------------------------------------------------------------------------
// include / redirect
// ---------------------------------------------------------------------------

#[test]
fn include_pass_propagates() {
    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 include:child.test -all")
        .txt("child.test", "v=spf1 ip4:192.0.2.1 -all");
    let (eval, _) = run(&dns, params("192.0.2.1", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::Pass);
    assert_eq!(eval.dns_mechanism_terms, 1);
}

#[test]
fn include_fail_means_no_match() {
    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 include:child.test ~all")
        .txt("child.test", "v=spf1 -all");
    let (eval, _) = run(&dns, params("192.0.2.1", "d.test"), strict());
    // Child fails → include doesn't match → parent falls to ~all.
    assert_eq!(eval.result, SpfResult::SoftFail);
}

#[test]
fn include_with_qualifier() {
    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 -include:child.test +all")
        .txt("child.test", "v=spf1 ip4:192.0.2.1 -all");
    // Child passes → include matches with '-' qualifier → Fail.
    let (eval, _) = run(&dns, params("192.0.2.1", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::Fail);
}

#[test]
fn include_missing_record_is_permerror() {
    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 include:ghost.test ?all");
    let (eval, _) = run(&dns, params("192.0.2.1", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::PermError);
}

#[test]
fn nested_includes_count_against_limit() {
    // Chain of 12 includes: strict evaluators permerror at >10.
    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 include:c1.test -all");
    for i in 1..=12 {
        dns.txt(
            &format!("c{i}.test"),
            &format!("v=spf1 include:c{}.test ?all", i + 1),
        );
    }
    let (eval, asked) = run(&dns, params("192.0.2.1", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::PermError);
    assert!(eval.error.unwrap().contains("too many DNS-querying"));
    // Base TXT + 10 includes processed before the 11th trips the limit.
    assert_eq!(asked.len(), 11);
}

#[test]
fn limit_violator_follows_whole_chain() {
    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 include:c1.test -all");
    for i in 1..=12 {
        dns.txt(
            &format!("c{i}.test"),
            &format!("v=spf1 include:c{}.test ?all", i + 1),
        );
    }
    dns.txt("c13.test", "v=spf1 ?all");
    let behavior = SpfBehavior {
        enforce_lookup_limit: false,
        max_include_depth: 50,
        ..strict()
    };
    let (eval, asked) = run(&dns, params("192.0.2.1", "d.test"), behavior);
    assert_eq!(eval.result, SpfResult::Fail); // innermost ?all → no match up the chain → -all
    assert_eq!(asked.len(), 14); // base + 13 chain fetches
}

#[test]
fn redirect_replaces_policy() {
    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 redirect=real.test")
        .txt("real.test", "v=spf1 ip4:192.0.2.1 -all");
    let (eval, _) = run(&dns, params("192.0.2.1", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::Pass);
    let (eval, _) = run(&dns, params("198.51.100.1", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::Fail);
}

#[test]
fn redirect_ignored_when_all_present_matches_first() {
    let mut dns = MockDns::default();
    // Mechanisms win before redirect is consulted.
    dns.txt("d.test", "v=spf1 ip4:192.0.2.1 redirect=other.test");
    let (eval, asked) = run(&dns, params("192.0.2.1", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::Pass);
    assert_eq!(asked.len(), 1);
}

#[test]
fn redirect_to_missing_record_is_permerror() {
    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 redirect=ghost.test");
    let (eval, _) = run(&dns, params("192.0.2.1", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::PermError);
}

// ---------------------------------------------------------------------------
// Hostile policies: include/redirect cycles, lookup exhaustion
// ---------------------------------------------------------------------------

#[test]
fn self_include_cycle_is_permerror() {
    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 include:d.test -all");
    let (eval, asked) = run(&dns, params("192.0.2.1", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::PermError);
    assert!(eval.cycle_detected);
    assert!(eval.dns_mechanism_terms <= 10);
    assert_eq!(asked.len(), 1, "cycle detected without refetching");
}

#[test]
fn two_node_include_cycle_is_permerror() {
    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 include:e.test -all")
        .txt("e.test", "v=spf1 include:d.test -all");
    let (eval, asked) = run(&dns, params("192.0.2.1", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::PermError);
    assert!(eval.cycle_detected);
    assert!(eval.dns_mechanism_terms <= 10);
    assert_eq!(asked.len(), 2); // both TXTs fetched once; loop broken there
}

#[test]
fn include_cycle_terminates_even_without_lookup_limit() {
    // A limit violator (enforce_lookup_limit: false) must still break the
    // cycle rather than spin: the counter is not what saves it.
    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 include:e.test -all")
        .txt("e.test", "v=spf1 include:d.test -all");
    let behavior = SpfBehavior {
        enforce_lookup_limit: false,
        ..strict()
    };
    let (eval, _) = run(&dns, params("192.0.2.1", "d.test"), behavior);
    assert_eq!(eval.result, SpfResult::PermError);
    assert!(eval.cycle_detected);
}

#[test]
fn redirect_self_loop_is_permerror() {
    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 redirect=d.test");
    let (eval, asked) = run(&dns, params("192.0.2.1", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::PermError);
    assert!(eval.cycle_detected);
    assert_eq!(asked.len(), 1);
}

#[test]
fn two_node_redirect_cycle_terminates_without_limit() {
    // Before the per-frame redirect trail this looped forever when the
    // lookup limit was off: both records sit in the answered cache, so
    // the evaluator ping-ponged synchronously between them.
    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 redirect=e.test")
        .txt("e.test", "v=spf1 redirect=d.test");
    let behavior = SpfBehavior {
        enforce_lookup_limit: false,
        ..strict()
    };
    let (eval, asked) = run(&dns, params("192.0.2.1", "d.test"), behavior);
    assert_eq!(eval.result, SpfResult::PermError);
    assert!(eval.cycle_detected);
    assert_eq!(asked.len(), 2);

    // And with the limit on, same deterministic outcome.
    let (eval, _) = run(&dns, params("192.0.2.1", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::PermError);
    assert!(eval.cycle_detected);
}

#[test]
fn lookup_exhaustion_sets_typed_flag() {
    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 include:c1.test -all");
    for i in 1..=12 {
        dns.txt(
            &format!("c{i}.test"),
            &format!("v=spf1 include:c{}.test ?all", i + 1),
        );
    }
    let (eval, asked) = run(&dns, params("192.0.2.1", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::PermError);
    assert!(eval.lookups_exhausted);
    assert!(!eval.cycle_detected);
    // Base TXT + 10 processed includes: the 11th term trips the cap.
    assert_eq!(asked.len(), 11);
}

#[test]
fn void_exhaustion_sets_typed_flag() {
    let mut dns = MockDns::default();
    dns.txt(
        "d.test",
        "v=spf1 a:v1.test a:v2.test a:v3.test a:v4.test a:v5.test ?all",
    );
    let (eval, _) = run(&dns, params("192.0.2.1", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::PermError);
    assert!(eval.lookups_exhausted);
    assert!(!eval.cycle_detected);
}

#[test]
fn benign_policies_leave_hostile_flags_clear() {
    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 include:child.test -all")
        .txt("child.test", "v=spf1 ip4:192.0.2.0/24 ?all");
    let (eval, _) = run(&dns, params("192.0.2.1", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::Pass);
    assert!(!eval.cycle_detected);
    assert!(!eval.lookups_exhausted);
}

#[test]
fn sibling_reinclude_is_not_a_cycle() {
    // The same target included twice sequentially is legal (and common);
    // only an *ancestor* on the active stack is a cycle.
    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 include:c.test include:c.test ~all")
        .txt("c.test", "v=spf1 ip4:203.0.113.1 ?all");
    let (eval, _) = run(&dns, params("192.0.2.1", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::SoftFail);
    assert!(!eval.cycle_detected);
}

// ---------------------------------------------------------------------------
// Error handling behaviors (§7.3 of the paper)
// ---------------------------------------------------------------------------

#[test]
fn syntax_error_in_main_policy_is_permerror() {
    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 ipv4:192.0.2.1 a:after.d.test -all")
        .a("after.d.test", "192.0.2.1");
    let (eval, asked) = run(&dns, params("192.0.2.1", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::PermError);
    assert_eq!(asked.len(), 1, "no lookups past the syntax error");
}

#[test]
fn lenient_validator_continues_past_syntax_error() {
    // 5.5% of measured MTAs (§7.3).
    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 ipv4:192.0.2.1 a:after.d.test -all")
        .a("after.d.test", "192.0.2.1");
    let behavior = SpfBehavior {
        skip_invalid_terms: true,
        ..strict()
    };
    let (eval, asked) = run(&dns, params("192.0.2.1", "d.test"), behavior);
    assert_eq!(eval.result, SpfResult::Pass);
    assert_eq!(asked.len(), 2, "lookup to the right of the error happened");
}

#[test]
fn child_syntax_error_propagates_by_default() {
    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 include:child.test a:after.d.test -all")
        .txt("child.test", "v=spf1 ipv4:bogus -all")
        .a("after.d.test", "192.0.2.1");
    let (eval, asked) = run(&dns, params("192.0.2.1", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::PermError);
    assert_eq!(asked.len(), 2); // base + child TXT; nothing after
}

#[test]
fn lenient_parent_continues_past_child_error() {
    // 12.3% of measured MTAs (§7.3).
    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 include:child.test a:after.d.test -all")
        .txt("child.test", "v=spf1 ipv4:bogus -all")
        .a("after.d.test", "192.0.2.1");
    let behavior = SpfBehavior {
        ignore_include_permerror: true,
        ..strict()
    };
    let (eval, asked) = run(&dns, params("192.0.2.1", "d.test"), behavior);
    assert_eq!(eval.result, SpfResult::Pass);
    assert_eq!(asked.len(), 3);
}

#[test]
fn void_lookup_limit() {
    // The paper's five-dead-"a" policy (§7.3): compliant validators stop
    // after two void lookups.
    let mut dns = MockDns::default();
    dns.txt(
        "d.test",
        "v=spf1 a:v1.test a:v2.test a:v3.test a:v4.test a:v5.test ?all",
    );
    let (eval, asked) = run(&dns, params("192.0.2.1", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::PermError);
    assert_eq!(asked.len(), 4); // TXT + 3 A lookups (third void trips it)
    assert_eq!(eval.void_lookups, 3);
}

#[test]
fn void_limit_violator_looks_up_all_five() {
    // 97% exceeded the limit; 64% looked up all five names (§7.3).
    let mut dns = MockDns::default();
    dns.txt(
        "d.test",
        "v=spf1 a:v1.test a:v2.test a:v3.test a:v4.test a:v5.test ?all",
    );
    let behavior = SpfBehavior {
        enforce_void_limit: false,
        ..strict()
    };
    let (eval, asked) = run(&dns, params("192.0.2.1", "d.test"), behavior);
    assert_eq!(eval.result, SpfResult::Neutral);
    assert_eq!(asked.len(), 6);
    assert_eq!(eval.void_lookups, 5);
}

#[test]
fn multiple_spf_records_permerror() {
    // 77% of measured MTAs follow neither policy (§7.3).
    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 a:first.d.test -all")
        .txt("d.test", "v=spf1 a:second.d.test -all");
    let (eval, asked) = run(&dns, params("192.0.2.1", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::PermError);
    assert_eq!(asked.len(), 1, "no queries for either policy-specific name");
}

#[test]
fn multiple_spf_records_follow_first() {
    // The 23% non-compliant behavior: follow one of the policies.
    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 a:first.d.test -all")
        .txt("d.test", "v=spf1 a:second.d.test -all")
        .a("first.d.test", "192.0.2.1");
    let behavior = SpfBehavior {
        on_multiple_records: MultiRecordPolicy::FollowFirst,
        ..strict()
    };
    let (eval, asked) = run(&dns, params("192.0.2.1", "d.test"), behavior);
    assert_eq!(eval.result, SpfResult::Pass);
    assert_eq!(asked.len(), 2);
    assert_eq!(asked[1].name, n("first.d.test"));
    // Never both policies (the paper observed no MTA following both).
    assert!(!asked.iter().any(|q| q.name == n("second.d.test")));
}

#[test]
fn temperror_on_dns_failure() {
    let mut dns = MockDns::default();
    dns.fail("d.test", RecordType::Txt, ResolveOutcome::Timeout);
    let (eval, _) = run(&dns, params("192.0.2.1", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::TempError);

    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 a:slow.test -all");
    dns.fail("slow.test", RecordType::A, ResolveOutcome::ServFail);
    let (eval, _) = run(&dns, params("192.0.2.1", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::TempError);
}

#[test]
fn non_spf_txt_records_ignored() {
    let mut dns = MockDns::default();
    dns.txt("d.test", "google-site-verification=abc123")
        .txt("d.test", "v=spf1 ip4:192.0.2.1 -all")
        .txt("d.test", "some other text");
    let (eval, _) = run(&dns, params("192.0.2.1", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::Pass);
}

// ---------------------------------------------------------------------------
// Serial vs parallel lookup scheduling (§7.1 of the paper)
// ---------------------------------------------------------------------------

/// Install the paper's Figure 3 test policy: L0 = include:L1 a:FOO -all,
/// L1 includes L2, L2 includes L3, L3 = ?all.
fn serial_test_policy(dns: &mut MockDns) {
    dns.txt(
        "t01.m1.spf.test",
        "v=spf1 include:l1.t01.m1.spf.test a:foo.t01.m1.spf.test -all",
    )
    .txt(
        "l1.t01.m1.spf.test",
        "v=spf1 include:l2.t01.m1.spf.test ?all",
    )
    .txt(
        "l2.t01.m1.spf.test",
        "v=spf1 include:l3.t01.m1.spf.test ?all",
    )
    .txt("l3.t01.m1.spf.test", "v=spf1 ?all")
    .a("foo.t01.m1.spf.test", "192.0.2.1");
}

#[test]
fn serial_validator_defers_a_lookup_past_l3() {
    let mut dns = MockDns::default();
    serial_test_policy(&mut dns);
    let (eval, asked) = run(&dns, params("198.51.100.7", "t01.m1.spf.test"), strict());
    assert_eq!(eval.result, SpfResult::Fail);
    let order: Vec<String> = asked.iter().map(|q| q.name.to_string()).collect();
    let a_pos = order
        .iter()
        .position(|s| s.starts_with("foo."))
        .expect("a lookup happened");
    let l3_pos = order.iter().position(|s| s.starts_with("l3.")).unwrap();
    assert!(
        a_pos > l3_pos,
        "serial validator must fetch FOO after L3: {order:?}"
    );
}

#[test]
fn parallel_validator_prefetches_a_lookup() {
    let mut dns = MockDns::default();
    serial_test_policy(&mut dns);
    let behavior = SpfBehavior {
        parallel_prefetch: true,
        ..strict()
    };
    let (eval, asked) = run(&dns, params("198.51.100.7", "t01.m1.spf.test"), behavior);
    assert_eq!(eval.result, SpfResult::Fail);
    let order: Vec<String> = asked.iter().map(|q| q.name.to_string()).collect();
    let a_pos = order.iter().position(|s| s.starts_with("foo.")).unwrap();
    let l3_pos = order.iter().position(|s| s.starts_with("l3.")).unwrap();
    assert!(
        a_pos < l3_pos,
        "parallel validator fetches FOO before L3: {order:?}"
    );
}

// ---------------------------------------------------------------------------
// Macro-bearing policies end to end
// ---------------------------------------------------------------------------

#[test]
fn macro_exists_policy() {
    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 exists:%{l}.%{d2}.acl.d.test -all")
        .a("spf-test.d.test.acl.d.test", "127.0.0.2");
    let (eval, _) = run(&dns, params("192.0.2.1", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::Pass);
}

#[test]
fn bad_macro_is_permerror() {
    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 exists:%{q}.d.test -all");
    let (eval, _) = run(&dns, params("192.0.2.1", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::PermError);
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

#[test]
fn counters_track_queries() {
    let mut dns = MockDns::default();
    dns.txt("d.test", "v=spf1 include:c.test a:m.d.test -all")
        .txt("c.test", "v=spf1 ?all")
        .a("m.d.test", "192.0.2.1");
    let (eval, asked) = run(&dns, params("192.0.2.1", "d.test"), strict());
    assert_eq!(eval.result, SpfResult::Pass);
    assert_eq!(eval.dns_mechanism_terms, 2);
    assert_eq!(eval.queries_issued, asked.len() as u32);
    assert_eq!(asked.len(), 3);
}
