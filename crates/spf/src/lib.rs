//! # mailval-spf
//!
//! A complete RFC 7208 Sender Policy Framework implementation:
//!
//! * [`record`] — the policy grammar: qualifiers, all eight mechanisms
//!   (`all`, `include`, `a`, `mx`, `ptr`, `ip4`, `ip6`, `exists`), the
//!   `redirect`/`exp` modifiers, and CIDR suffixes. Parsing is strict by
//!   default (unknown mechanisms are permanent errors, §4.6 / §12).
//! * [`macros`] — macro-string expansion (§7): `%{s}`, `%{l}`, `%{o}`,
//!   `%{d}`, `%{i}`, `%{v}`, `%{h}`, digit/`r`/delimiter transformers.
//! * [`eval`] — `check_host()` as a **resumable sans-IO state machine**:
//!   it yields DNS questions and is resumed with answers, which lets the
//!   same evaluator run under the virtual-time simulator, over real
//!   sockets, and — crucially for reproducing §7 of the paper — lets
//!   every compliance knob (lookup limits, void-lookup limits, serial vs
//!   parallel lookups, syntax-error tolerance, multi-record handling,
//!   `mx` fallback) be configured per evaluation.
//! * [`header`] — `Received-SPF` result header rendering (§9.1).
//!
//! The paper measures how *deployed validators* deviate from this spec;
//! [`eval::SpfBehavior`] is therefore a first-class concept here rather
//! than an afterthought: its default is strict RFC 7208 conformance and
//! every deviation the paper observed in the wild is an explicit flag.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod eval;
pub mod header;
pub mod macros;
pub mod record;

pub use eval::{DnsQuestion, EvalParams, EvalStep, SpfBehavior, SpfEvaluation, SpfEvaluator};
pub use record::{Mechanism, Qualifier, RecordParseError, SpfRecord, Term};

/// The seven SPF results of RFC 7208 §2.6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpfResult {
    /// No SPF record was published for the domain.
    None,
    /// The domain explicitly takes no position (`?` qualifier matched).
    Neutral,
    /// The client is authorized.
    Pass,
    /// The client is *not* authorized.
    Fail,
    /// Somewhere between Fail and Neutral (`~` qualifier matched).
    SoftFail,
    /// A transient error (usually DNS) prevented evaluation.
    TempError,
    /// The published records could not be correctly interpreted.
    PermError,
}

impl std::fmt::Display for SpfResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SpfResult::None => "none",
            SpfResult::Neutral => "neutral",
            SpfResult::Pass => "pass",
            SpfResult::Fail => "fail",
            SpfResult::SoftFail => "softfail",
            SpfResult::TempError => "temperror",
            SpfResult::PermError => "permerror",
        };
        write!(f, "{s}")
    }
}
