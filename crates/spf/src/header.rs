//! `Received-SPF` header rendering (RFC 7208 §9.1).

use crate::eval::SpfEvaluation;
use crate::SpfResult;
use std::net::IpAddr;

/// Render the value of a `Received-SPF` header for an evaluation.
pub fn received_spf(
    eval: &SpfEvaluation,
    client_ip: IpAddr,
    helo: &str,
    envelope_from: &str,
    receiver: &str,
) -> String {
    let comment = match eval.result {
        SpfResult::Pass => format!("{receiver}: domain designates {client_ip} as permitted sender"),
        SpfResult::Fail => {
            format!("{receiver}: domain does not designate {client_ip} as permitted sender")
        }
        SpfResult::SoftFail => format!(
            "{receiver}: transitioning domain does not designate {client_ip} as permitted sender"
        ),
        SpfResult::Neutral => format!("{receiver}: {client_ip} is neither permitted nor denied"),
        SpfResult::None => format!("{receiver}: no SPF record"),
        SpfResult::TempError => {
            format!("{receiver}: error in processing during lookup (transient)")
        }
        SpfResult::PermError => format!("{receiver}: permanent error in processing"),
    };
    format!(
        "{} ({}) client-ip={}; envelope-from={}; helo={};",
        eval.result, comment, client_ip, envelope_from, helo
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(result: SpfResult) -> SpfEvaluation {
        SpfEvaluation {
            result,
            dns_mechanism_terms: 1,
            void_lookups: 0,
            queries_issued: 2,
            matched_term: None,
            error: None,
            cycle_detected: false,
            lookups_exhausted: false,
        }
    }

    #[test]
    fn pass_header() {
        let h = received_spf(
            &eval(SpfResult::Pass),
            "192.0.2.1".parse().unwrap(),
            "probe.test",
            "a@b.test",
            "mx.recv.test",
        );
        assert!(h.starts_with("pass ("));
        assert!(h.contains("client-ip=192.0.2.1;"));
        assert!(h.contains("envelope-from=a@b.test;"));
        assert!(h.contains("helo=probe.test;"));
    }

    #[test]
    fn all_results_render() {
        for r in [
            SpfResult::None,
            SpfResult::Neutral,
            SpfResult::Pass,
            SpfResult::Fail,
            SpfResult::SoftFail,
            SpfResult::TempError,
            SpfResult::PermError,
        ] {
            let h = received_spf(
                &eval(r),
                "2001:db8::1".parse().unwrap(),
                "h.test",
                "x@y.test",
                "mx.test",
            );
            assert!(h.starts_with(&r.to_string()), "{h}");
        }
    }
}
