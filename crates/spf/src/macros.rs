//! SPF macro-string expansion (RFC 7208 §7).
//!
//! Domain specifications in mechanisms may contain macros like
//! `%{ir}.%{v}._spf.%{d}`. Expansion needs the evaluation context (sender,
//! IP, domain, HELO identity).

use std::fmt;
use std::net::IpAddr;

/// Context needed for macro expansion.
#[derive(Debug, Clone)]
pub struct MacroContext {
    /// `<s>`: the full sender (local@domain). When MAIL FROM is null, RFC
    /// 7208 §4.3 substitutes `postmaster@<HELO domain>`.
    pub sender: String,
    /// `<l>`: sender local part.
    pub local_part: String,
    /// `<o>`: sender domain.
    pub sender_domain: String,
    /// `<d>`: the domain currently being evaluated.
    pub domain: String,
    /// `<i>`: client IP.
    pub ip: IpAddr,
    /// `<h>`: HELO/EHLO identity.
    pub helo: String,
}

/// Expansion errors (map to `permerror` in evaluation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MacroError {
    /// `%` not followed by `{`, `%`, `_` or `-`.
    BadPercent,
    /// Unterminated `%{...}`.
    Unterminated,
    /// Unknown macro letter or malformed transformer.
    BadMacro(String),
}

impl fmt::Display for MacroError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MacroError::BadPercent => write!(f, "bad %-escape"),
            MacroError::Unterminated => write!(f, "unterminated macro"),
            MacroError::BadMacro(m) => write!(f, "bad macro {m:?}"),
        }
    }
}

impl std::error::Error for MacroError {}

/// `<i>` expansion: dotted quad for IPv4; dot-separated lowercase nibbles
/// for IPv6 (RFC 7208 §7.3).
pub fn ip_macro_form(ip: IpAddr) -> String {
    match ip {
        IpAddr::V4(v4) => v4.to_string(),
        IpAddr::V6(v6) => {
            let octets = v6.octets();
            let mut parts = Vec::with_capacity(32);
            for b in octets {
                parts.push(format!("{:x}", b >> 4));
                parts.push(format!("{:x}", b & 0xf));
            }
            parts.join(".")
        }
    }
}

/// Expand a macro-string. `is_exp` enables the exp-only macros (c/r/t are
/// accepted but expanded to fixed placeholders, since the evaluator does
/// not carry them).
pub fn expand(spec: &str, ctx: &MacroContext, is_exp: bool) -> Result<String, MacroError> {
    let mut out = String::with_capacity(spec.len());
    let bytes = spec.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'%' {
            out.push(bytes[i] as char);
            i += 1;
            continue;
        }
        match bytes.get(i + 1) {
            Some(b'%') => {
                out.push('%');
                i += 2;
            }
            Some(b'_') => {
                out.push(' ');
                i += 2;
            }
            Some(b'-') => {
                out.push_str("%20");
                i += 2;
            }
            Some(b'{') => {
                let end = spec[i + 2..].find('}').ok_or(MacroError::Unterminated)? + i + 2;
                let inner = &spec[i + 2..end];
                out.push_str(&expand_one(inner, ctx, is_exp)?);
                i = end + 1;
            }
            _ => return Err(MacroError::BadPercent),
        }
    }
    Ok(out)
}

fn expand_one(inner: &str, ctx: &MacroContext, is_exp: bool) -> Result<String, MacroError> {
    let mut chars = inner.chars();
    let letter = chars
        .next()
        .ok_or_else(|| MacroError::BadMacro(inner.into()))?;
    let rest: String = chars.collect();

    let uppercase = letter.is_ascii_uppercase();
    let letter = letter.to_ascii_lowercase();

    let base = match letter {
        's' => ctx.sender.clone(),
        'l' => ctx.local_part.clone(),
        'o' => ctx.sender_domain.clone(),
        'd' => ctx.domain.clone(),
        'i' => ip_macro_form(ctx.ip),
        'h' => ctx.helo.clone(),
        'v' => match ctx.ip {
            IpAddr::V4(_) => "in-addr".to_string(),
            IpAddr::V6(_) => "ip6".to_string(),
        },
        'p' => {
            // Validated domain of the client IP. RFC 7208 §7.3 says use
            // "unknown" when not available; we never compute it (and §5.5
            // discourages its use).
            "unknown".to_string()
        }
        'c' | 'r' | 't' if is_exp => match letter {
            'c' => ip_macro_form(ctx.ip),
            'r' => "unknown".to_string(),
            _ => "0".to_string(),
        },
        _ => return Err(MacroError::BadMacro(inner.into())),
    };

    // Transformers: optional digits (keep N rightmost parts), optional 'r'
    // (reverse), then delimiter characters.
    let mut digits = String::new();
    let mut rest_chars = rest.chars().peekable();
    while let Some(&c) = rest_chars.peek() {
        if c.is_ascii_digit() {
            digits.push(c);
            rest_chars.next();
        } else {
            break;
        }
    }
    let reverse = matches!(rest_chars.peek(), Some('r') | Some('R'));
    if reverse {
        rest_chars.next();
    }
    let delims: Vec<char> = rest_chars.collect();
    for &d in &delims {
        if !matches!(d, '.' | '-' | '+' | ',' | '/' | '_' | '=') {
            return Err(MacroError::BadMacro(inner.into()));
        }
    }
    let delims: &[char] = if delims.is_empty() {
        &['.']
    } else {
        &delims[..]
    };

    let mut parts: Vec<&str> = base.split(|c| delims.contains(&c)).collect();
    if reverse {
        parts.reverse();
    }
    if !digits.is_empty() {
        let n: usize = digits
            .parse()
            .map_err(|_| MacroError::BadMacro(inner.into()))?;
        if n == 0 {
            return Err(MacroError::BadMacro(inner.into()));
        }
        let start = parts.len().saturating_sub(n);
        parts = parts[start..].to_vec();
    }
    let joined = parts.join(".");

    Ok(if uppercase {
        // URL-escape (RFC 7208 §7.3 "URL encoding").
        let mut escaped = String::with_capacity(joined.len());
        for b in joined.bytes() {
            if b.is_ascii_alphanumeric() || matches!(b, b'-' | b'.' | b'_' | b'~') {
                escaped.push(b as char);
            } else {
                escaped.push_str(&format!("%{b:02X}"));
            }
        }
        escaped
    } else {
        joined
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{Ipv4Addr, Ipv6Addr};

    fn ctx() -> MacroContext {
        MacroContext {
            sender: "strong-bad@email.example.com".into(),
            local_part: "strong-bad".into(),
            sender_domain: "email.example.com".into(),
            domain: "email.example.com".into(),
            ip: IpAddr::V4(Ipv4Addr::new(192, 0, 2, 3)),
            helo: "mail.example.com".into(),
        }
    }

    // RFC 7208 §7.4 examples.
    #[test]
    fn rfc_examples() {
        let c = ctx();
        assert_eq!(
            expand("%{s}", &c, false).unwrap(),
            "strong-bad@email.example.com"
        );
        assert_eq!(expand("%{o}", &c, false).unwrap(), "email.example.com");
        assert_eq!(expand("%{d}", &c, false).unwrap(), "email.example.com");
        assert_eq!(expand("%{d4}", &c, false).unwrap(), "email.example.com");
        assert_eq!(expand("%{d3}", &c, false).unwrap(), "email.example.com");
        assert_eq!(expand("%{d2}", &c, false).unwrap(), "example.com");
        assert_eq!(expand("%{d1}", &c, false).unwrap(), "com");
        assert_eq!(expand("%{dr}", &c, false).unwrap(), "com.example.email");
        assert_eq!(expand("%{d2r}", &c, false).unwrap(), "example.email");
        assert_eq!(expand("%{l}", &c, false).unwrap(), "strong-bad");
        assert_eq!(expand("%{l-}", &c, false).unwrap(), "strong.bad");
        assert_eq!(expand("%{lr}", &c, false).unwrap(), "strong-bad");
        assert_eq!(expand("%{lr-}", &c, false).unwrap(), "bad.strong");
        assert_eq!(expand("%{l1r-}", &c, false).unwrap(), "strong");
    }

    #[test]
    fn rfc_composite_examples() {
        let c = ctx();
        assert_eq!(
            expand("%{ir}.%{v}._spf.%{d2}", &c, false).unwrap(),
            "3.2.0.192.in-addr._spf.example.com"
        );
        assert_eq!(
            expand("%{lr-}.lp._spf.%{d2}", &c, false).unwrap(),
            "bad.strong.lp._spf.example.com"
        );
        assert_eq!(
            expand("%{ir}.%{v}.%{l1r-}.lp._spf.%{d2}", &c, false).unwrap(),
            "3.2.0.192.in-addr.strong.lp._spf.example.com"
        );
        assert_eq!(
            expand("%{d2}.trusted-domains.example.net", &c, false).unwrap(),
            "example.com.trusted-domains.example.net"
        );
    }

    #[test]
    fn ipv6_form() {
        let mut c = ctx();
        c.ip = IpAddr::V6("2001:db8::cb01".parse::<Ipv6Addr>().unwrap());
        let expanded = expand("%{ir}.%{v}._spf.%{d2}", &c, false).unwrap();
        assert_eq!(
            expanded,
            "1.0.b.c.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.8.b.d.0.1.0.0.2.ip6._spf.example.com"
        );
    }

    #[test]
    fn literal_escapes() {
        let c = ctx();
        assert_eq!(expand("a%%b", &c, false).unwrap(), "a%b");
        assert_eq!(expand("a%_b", &c, false).unwrap(), "a b");
        assert_eq!(expand("a%-b", &c, false).unwrap(), "a%20b");
    }

    #[test]
    fn errors() {
        let c = ctx();
        assert_eq!(expand("%x", &c, false), Err(MacroError::BadPercent));
        assert_eq!(expand("%{d", &c, false), Err(MacroError::Unterminated));
        assert!(matches!(
            expand("%{q}", &c, false),
            Err(MacroError::BadMacro(_))
        ));
        assert!(matches!(
            expand("%{d0}", &c, false),
            Err(MacroError::BadMacro(_))
        ));
        // exp-only macros outside exp:
        assert!(matches!(
            expand("%{c}", &c, false),
            Err(MacroError::BadMacro(_))
        ));
        assert!(expand("%{c}", &c, true).is_ok());
    }

    #[test]
    fn uppercase_url_escapes() {
        let c = ctx();
        assert_eq!(
            expand("%{S}", &c, false).unwrap(),
            "strong-bad%40email.example.com"
        );
    }

    #[test]
    fn no_macros_passthrough() {
        let c = ctx();
        assert_eq!(
            expand("plain.example.org", &c, false).unwrap(),
            "plain.example.org"
        );
    }
}
