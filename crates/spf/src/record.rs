//! SPF record grammar and parser (RFC 7208 §4.5, §5, §6, §12).
//!
//! A record is `v=spf1` followed by whitespace-separated *terms*: each
//! term is a mechanism (optionally prefixed by a qualifier) or a
//! modifier. Domain specifications may contain macro strings, which are
//! kept raw here and expanded at evaluation time.

use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Qualifier attached to a mechanism (RFC 7208 §4.6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Qualifier {
    /// `+` (the default).
    Pass,
    /// `-`.
    Fail,
    /// `~`.
    SoftFail,
    /// `?`.
    Neutral,
}

impl fmt::Display for Qualifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Qualifier::Pass => "+",
            Qualifier::Fail => "-",
            Qualifier::SoftFail => "~",
            Qualifier::Neutral => "?",
        };
        write!(f, "{c}")
    }
}

/// An IPv4 network (address + prefix length).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ipv4Net {
    /// Network address as given.
    pub addr: Ipv4Addr,
    /// Prefix length, 0–32.
    pub prefix: u8,
}

impl Ipv4Net {
    /// Does `ip` fall inside this network?
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        if self.prefix == 0 {
            return true;
        }
        let mask = u32::MAX << (32 - self.prefix as u32);
        (u32::from(self.addr) & mask) == (u32::from(ip) & mask)
    }
}

/// An IPv6 network (address + prefix length).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ipv6Net {
    /// Network address as given.
    pub addr: Ipv6Addr,
    /// Prefix length, 0–128.
    pub prefix: u8,
}

impl Ipv6Net {
    /// Does `ip` fall inside this network?
    pub fn contains(&self, ip: Ipv6Addr) -> bool {
        if self.prefix == 0 {
            return true;
        }
        let mask = u128::MAX << (128 - self.prefix as u32);
        (u128::from(self.addr) & mask) == (u128::from(ip) & mask)
    }
}

/// Dual CIDR suffix for `a` and `mx` mechanisms (RFC 7208 §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DualCidr {
    /// IPv4 prefix length (default 32).
    pub v4: u8,
    /// IPv6 prefix length (default 128).
    pub v6: u8,
}

impl Default for DualCidr {
    fn default() -> Self {
        DualCidr { v4: 32, v6: 128 }
    }
}

/// A mechanism (RFC 7208 §5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mechanism {
    /// `all` — always matches.
    All,
    /// `include:<domain-spec>` — recursive evaluation.
    Include {
        /// Raw domain-spec (may contain macros).
        domain_spec: String,
    },
    /// `a[:<domain-spec>][/cidr]`.
    A {
        /// Raw domain-spec; `None` means the current domain.
        domain_spec: Option<String>,
        /// CIDR suffixes.
        cidr: DualCidr,
    },
    /// `mx[:<domain-spec>][/cidr]`.
    Mx {
        /// Raw domain-spec; `None` means the current domain.
        domain_spec: Option<String>,
        /// CIDR suffixes.
        cidr: DualCidr,
    },
    /// `ptr[:<domain-spec>]` (discouraged by §5.5 but grammar-legal).
    Ptr {
        /// Raw domain-spec; `None` means the current domain.
        domain_spec: Option<String>,
    },
    /// `ip4:<network>`.
    Ip4(Ipv4Net),
    /// `ip6:<network>`.
    Ip6(Ipv6Net),
    /// `exists:<domain-spec>`.
    Exists {
        /// Raw domain-spec (macros are the whole point of `exists`).
        domain_spec: String,
    },
}

impl Mechanism {
    /// Does evaluating this mechanism involve a DNS query? (These count
    /// against the 10-lookup limit of §4.6.4.)
    pub fn is_dns_mechanism(&self) -> bool {
        matches!(
            self,
            Mechanism::Include { .. }
                | Mechanism::A { .. }
                | Mechanism::Mx { .. }
                | Mechanism::Ptr { .. }
                | Mechanism::Exists { .. }
        )
    }
}

/// A modifier (RFC 7208 §6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Modifier {
    /// `redirect=<domain-spec>` — evaluated if no mechanism matched; counts
    /// against the lookup limit.
    Redirect {
        /// Raw domain-spec.
        domain_spec: String,
    },
    /// `exp=<domain-spec>` — explanation string source; does not count.
    Exp {
        /// Raw domain-spec.
        domain_spec: String,
    },
    /// Any unrecognized `name=value` modifier (must be ignored, §6).
    Unknown {
        /// Modifier name.
        name: String,
        /// Raw value.
        value: String,
    },
}

/// One whitespace-separated term of a record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Term {
    /// A qualified mechanism.
    Mechanism(Qualifier, Mechanism),
    /// A modifier.
    Modifier(Modifier),
}

/// A parsed SPF record.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpfRecord {
    /// Terms in order of appearance.
    pub terms: Vec<Term>,
}

/// Why a record failed to parse. Every variant maps to `permerror` under
/// strict evaluation (§4.6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordParseError {
    /// The string does not begin with the `v=spf1` version tag.
    NotSpf,
    /// An unknown mechanism name (the paper's deliberate `ipv4:` typo
    /// test, §7.3).
    UnknownMechanism {
        /// Zero-based index of the offending term.
        term_index: usize,
        /// The raw term text.
        term: String,
    },
    /// A mechanism had malformed arguments (bad IP, bad CIDR, missing
    /// required domain-spec).
    BadArguments {
        /// Zero-based index of the offending term.
        term_index: usize,
        /// The raw term text.
        term: String,
    },
}

impl fmt::Display for RecordParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordParseError::NotSpf => write!(f, "not an SPF record"),
            RecordParseError::UnknownMechanism { term, .. } => {
                write!(f, "unknown mechanism {term:?}")
            }
            RecordParseError::BadArguments { term, .. } => {
                write!(f, "bad arguments in {term:?}")
            }
        }
    }
}

impl std::error::Error for RecordParseError {}

/// Quick check: is this TXT string an SPF record at all? (RFC 7208 §4.5:
/// records are selected by the exact `v=spf1` version token.)
pub fn looks_like_spf(txt: &str) -> bool {
    let lower = txt.trim_start();
    let Some(rest) = lower.get(..6) else {
        return false;
    };
    if !rest.eq_ignore_ascii_case("v=spf1") {
        return false;
    }
    matches!(lower.as_bytes().get(6), None | Some(b' ') | Some(b'\t'))
}

fn parse_qualifier(term: &str) -> (Qualifier, &str) {
    match term.as_bytes().first() {
        Some(b'+') => (Qualifier::Pass, &term[1..]),
        Some(b'-') => (Qualifier::Fail, &term[1..]),
        Some(b'~') => (Qualifier::SoftFail, &term[1..]),
        Some(b'?') => (Qualifier::Neutral, &term[1..]),
        _ => (Qualifier::Pass, term),
    }
}

/// Split `body` into (domain-spec, dual-cidr); e.g. `a:host.test/24//64`.
fn parse_domain_and_cidr(body: &str) -> Option<(Option<String>, DualCidr)> {
    let mut cidr = DualCidr::default();
    // Find "//" first (v6 cidr), then "/" (v4 cidr).
    let (rest, v6_part) = match body.find("//") {
        Some(pos) => (&body[..pos], Some(&body[pos + 2..])),
        None => (body, None),
    };
    if let Some(v6) = v6_part {
        let prefix: u8 = v6.parse().ok()?;
        if prefix > 128 {
            return None;
        }
        cidr.v6 = prefix;
    }
    let (domain_part, v4_part) = match rest.find('/') {
        Some(pos) => (&rest[..pos], Some(&rest[pos + 1..])),
        None => (rest, None),
    };
    if let Some(v4) = v4_part {
        let prefix: u8 = v4.parse().ok()?;
        if prefix > 32 {
            return None;
        }
        cidr.v4 = prefix;
    }
    let domain = match domain_part.strip_prefix(':') {
        Some(d) if !d.is_empty() => Some(d.to_string()),
        Some(_) => return None, // "a:" with empty spec
        None if domain_part.is_empty() => None,
        None => return None, // junk between name and '/'
    };
    Some((domain, cidr))
}

impl SpfRecord {
    /// Parse the text of a TXT record. Returns `NotSpf` if the version tag
    /// is absent (the caller then ignores this TXT string entirely).
    pub fn parse(txt: &str) -> Result<SpfRecord, RecordParseError> {
        if !looks_like_spf(txt) {
            return Err(RecordParseError::NotSpf);
        }
        let body = txt.trim_start()[6..].trim();
        let mut terms = Vec::new();
        for (term_index, raw) in body.split_ascii_whitespace().enumerate() {
            terms.push(Self::parse_term(raw, term_index)?);
        }
        Ok(SpfRecord { terms })
    }

    /// Parse a single term. Exposed so lenient evaluators (the §7.3
    /// "continue despite syntax errors" behavior) can skip bad terms.
    pub fn parse_term(raw: &str, term_index: usize) -> Result<Term, RecordParseError> {
        let bad = || RecordParseError::BadArguments {
            term_index,
            term: raw.to_string(),
        };
        // Modifiers: name "=" value, name starts with alpha.
        if let Some(eq) = raw.find('=') {
            let name = &raw[..eq];
            let value = &raw[eq + 1..];
            let is_modifier_name = !name.is_empty()
                && name.chars().next().unwrap().is_ascii_alphabetic()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.');
            if is_modifier_name {
                let modifier = match name.to_ascii_lowercase().as_str() {
                    "redirect" => {
                        if value.is_empty() {
                            return Err(bad());
                        }
                        Modifier::Redirect {
                            domain_spec: value.to_string(),
                        }
                    }
                    "exp" => {
                        if value.is_empty() {
                            return Err(bad());
                        }
                        Modifier::Exp {
                            domain_spec: value.to_string(),
                        }
                    }
                    _ => Modifier::Unknown {
                        name: name.to_string(),
                        value: value.to_string(),
                    },
                };
                return Ok(Term::Modifier(modifier));
            }
        }

        let (qualifier, rest) = parse_qualifier(raw);
        // Mechanism name ends at ':' or '/' or end.
        let name_end = rest.find([':', '/']).unwrap_or(rest.len());
        let name = &rest[..name_end];
        let body = &rest[name_end..];
        let mech = match name.to_ascii_lowercase().as_str() {
            "all" => {
                if !body.is_empty() {
                    return Err(bad());
                }
                Mechanism::All
            }
            "include" => {
                let spec = body
                    .strip_prefix(':')
                    .filter(|s| !s.is_empty())
                    .ok_or_else(bad)?;
                Mechanism::Include {
                    domain_spec: spec.to_string(),
                }
            }
            "a" => {
                let (domain_spec, cidr) = parse_domain_and_cidr(body).ok_or_else(bad)?;
                Mechanism::A { domain_spec, cidr }
            }
            "mx" => {
                let (domain_spec, cidr) = parse_domain_and_cidr(body).ok_or_else(bad)?;
                Mechanism::Mx { domain_spec, cidr }
            }
            "ptr" => {
                let domain_spec = match body.strip_prefix(':') {
                    Some(d) if !d.is_empty() => Some(d.to_string()),
                    Some(_) => return Err(bad()),
                    None if body.is_empty() => None,
                    None => return Err(bad()),
                };
                Mechanism::Ptr { domain_spec }
            }
            "ip4" => {
                let spec = body.strip_prefix(':').ok_or_else(bad)?;
                let (addr_part, prefix) = match spec.find('/') {
                    Some(pos) => {
                        let p: u8 = spec[pos + 1..].parse().map_err(|_| bad())?;
                        if p > 32 {
                            return Err(bad());
                        }
                        (&spec[..pos], p)
                    }
                    None => (spec, 32),
                };
                let addr: Ipv4Addr = addr_part.parse().map_err(|_| bad())?;
                Mechanism::Ip4(Ipv4Net { addr, prefix })
            }
            "ip6" => {
                let spec = body.strip_prefix(':').ok_or_else(bad)?;
                let (addr_part, prefix) = match spec.find('/') {
                    Some(pos) => {
                        let p: u8 = spec[pos + 1..].parse().map_err(|_| bad())?;
                        if p > 128 {
                            return Err(bad());
                        }
                        (&spec[..pos], p)
                    }
                    None => (spec, 128),
                };
                let addr: Ipv6Addr = addr_part.parse().map_err(|_| bad())?;
                Mechanism::Ip6(Ipv6Net { addr, prefix })
            }
            "exists" => {
                let spec = body
                    .strip_prefix(':')
                    .filter(|s| !s.is_empty())
                    .ok_or_else(bad)?;
                Mechanism::Exists {
                    domain_spec: spec.to_string(),
                }
            }
            _ => {
                return Err(RecordParseError::UnknownMechanism {
                    term_index,
                    term: raw.to_string(),
                })
            }
        };
        Ok(Term::Mechanism(qualifier, mech))
    }

    /// Number of terms that trigger DNS lookups (include/a/mx/ptr/exists
    /// mechanisms plus redirect), i.e. this record's contribution to the
    /// §4.6.4 limit.
    pub fn dns_term_count(&self) -> usize {
        self.terms
            .iter()
            .filter(|t| match t {
                Term::Mechanism(_, m) => m.is_dns_mechanism(),
                Term::Modifier(Modifier::Redirect { .. }) => true,
                Term::Modifier(_) => false,
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_tag_detection() {
        assert!(looks_like_spf("v=spf1 -all"));
        assert!(looks_like_spf("v=spf1"));
        assert!(looks_like_spf("V=SPF1 -all"));
        assert!(!looks_like_spf("v=spf10 -all"));
        assert!(!looks_like_spf("spf1 -all"));
        assert!(!looks_like_spf("v=DMARC1; p=reject"));
    }

    #[test]
    fn parse_paper_example() {
        // The contrived policy from §2 of the paper.
        let r =
            SpfRecord::parse("v=spf1 ip4:192.0.2.1 a:bar.foo.com include:foo.net -all").unwrap();
        assert_eq!(r.terms.len(), 4);
        assert!(matches!(
            &r.terms[0],
            Term::Mechanism(Qualifier::Pass, Mechanism::Ip4(net)) if net.addr == Ipv4Addr::new(192,0,2,1) && net.prefix == 32
        ));
        assert!(matches!(
            &r.terms[1],
            Term::Mechanism(Qualifier::Pass, Mechanism::A { domain_spec: Some(d), .. }) if d == "bar.foo.com"
        ));
        assert!(matches!(
            &r.terms[2],
            Term::Mechanism(Qualifier::Pass, Mechanism::Include { domain_spec }) if domain_spec == "foo.net"
        ));
        assert!(matches!(
            &r.terms[3],
            Term::Mechanism(Qualifier::Fail, Mechanism::All)
        ));
        assert_eq!(r.dns_term_count(), 2);
    }

    #[test]
    fn qualifiers() {
        let r = SpfRecord::parse("v=spf1 +a ~mx ?ptr -all").unwrap();
        let quals: Vec<Qualifier> = r
            .terms
            .iter()
            .map(|t| match t {
                Term::Mechanism(q, _) => *q,
                _ => panic!(),
            })
            .collect();
        assert_eq!(
            quals,
            vec![
                Qualifier::Pass,
                Qualifier::SoftFail,
                Qualifier::Neutral,
                Qualifier::Fail
            ]
        );
    }

    #[test]
    fn dual_cidr() {
        let r = SpfRecord::parse("v=spf1 a:host.test/24//64 mx/16 -all").unwrap();
        match &r.terms[0] {
            Term::Mechanism(_, Mechanism::A { domain_spec, cidr }) => {
                assert_eq!(domain_spec.as_deref(), Some("host.test"));
                assert_eq!(cidr.v4, 24);
                assert_eq!(cidr.v6, 64);
            }
            other => panic!("{other:?}"),
        }
        match &r.terms[1] {
            Term::Mechanism(_, Mechanism::Mx { domain_spec, cidr }) => {
                assert!(domain_spec.is_none());
                assert_eq!(cidr.v4, 16);
                assert_eq!(cidr.v6, 128);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ip_networks() {
        let r = SpfRecord::parse("v=spf1 ip4:192.0.2.0/24 ip6:2001:db8::/32 -all").unwrap();
        match &r.terms[0] {
            Term::Mechanism(_, Mechanism::Ip4(net)) => {
                assert!(net.contains(Ipv4Addr::new(192, 0, 2, 200)));
                assert!(!net.contains(Ipv4Addr::new(192, 0, 3, 1)));
            }
            other => panic!("{other:?}"),
        }
        match &r.terms[1] {
            Term::Mechanism(_, Mechanism::Ip6(net)) => {
                assert!(net.contains("2001:db8:1::1".parse().unwrap()));
                assert!(!net.contains("2001:db9::1".parse().unwrap()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn zero_prefix_matches_everything() {
        let net4 = Ipv4Net {
            addr: Ipv4Addr::new(0, 0, 0, 0),
            prefix: 0,
        };
        assert!(net4.contains(Ipv4Addr::new(255, 255, 255, 255)));
        let net6 = Ipv6Net {
            addr: "::".parse().unwrap(),
            prefix: 0,
        };
        assert!(net6.contains("ffff::1".parse().unwrap()));
    }

    #[test]
    fn modifiers() {
        let r =
            SpfRecord::parse("v=spf1 redirect=_spf.example.com exp=exp.%{d} unknown=x").unwrap();
        assert!(matches!(
            &r.terms[0],
            Term::Modifier(Modifier::Redirect { domain_spec }) if domain_spec == "_spf.example.com"
        ));
        assert!(matches!(&r.terms[1], Term::Modifier(Modifier::Exp { .. })));
        assert!(matches!(
            &r.terms[2],
            Term::Modifier(Modifier::Unknown { name, .. }) if name == "unknown"
        ));
        assert_eq!(r.dns_term_count(), 1); // only redirect counts
    }

    #[test]
    fn the_papers_ipv4_typo_is_unknown_mechanism() {
        // §7.3: the test policy used "ipv4" instead of "ip4".
        let err = SpfRecord::parse("v=spf1 ipv4:192.0.2.1 a:after.test -all").unwrap_err();
        assert!(matches!(
            err,
            RecordParseError::UnknownMechanism { term_index: 0, .. }
        ));
    }

    #[test]
    fn bad_arguments_rejected() {
        for bad in [
            "v=spf1 ip4:999.1.1.1 -all",
            "v=spf1 ip4:192.0.2.1/33 -all",
            "v=spf1 ip6:zz:: -all",
            "v=spf1 ip6:2001:db8::/129 -all",
            "v=spf1 include: -all",
            "v=spf1 a: -all",
            "v=spf1 all:junk",
            "v=spf1 exists:",
            "v=spf1 redirect=",
        ] {
            assert!(
                matches!(
                    SpfRecord::parse(bad),
                    Err(RecordParseError::BadArguments { .. })
                ),
                "{bad} should be BadArguments"
            );
        }
    }

    #[test]
    fn empty_record_is_valid() {
        let r = SpfRecord::parse("v=spf1").unwrap();
        assert!(r.terms.is_empty());
    }

    #[test]
    fn case_insensitive_mechanisms() {
        let r = SpfRecord::parse("v=spf1 IP4:192.0.2.1 A MX -ALL").unwrap();
        assert_eq!(r.terms.len(), 4);
    }

    #[test]
    fn exists_with_macros_kept_raw() {
        let r = SpfRecord::parse("v=spf1 exists:%{ir}.%{v}._spf.%{d} -all").unwrap();
        match &r.terms[0] {
            Term::Mechanism(_, Mechanism::Exists { domain_spec }) => {
                assert_eq!(domain_spec, "%{ir}.%{v}._spf.%{d}");
            }
            other => panic!("{other:?}"),
        }
    }
}
