//! `check_host()` (RFC 7208 §4) as a resumable, sans-IO state machine.
//!
//! The evaluator never performs I/O: [`SpfEvaluator::start`] and
//! [`SpfEvaluator::resume`] return [`EvalStep::NeedLookups`] with DNS
//! questions, and the caller feeds answers back in. In *serial* mode (the
//! behavior 97% of measured MTAs exhibit, §7.1 of the paper) one question
//! is emitted at a time, strictly on demand. In *parallel-prefetch* mode,
//! every lookup a freshly fetched record will need is emitted at once.
//!
//! [`SpfBehavior`] defaults to strict RFC 7208 conformance; every flag on
//! it reproduces a deviation the paper observed in deployed validators
//! (§7.2, §7.3).

use crate::macros::{expand, MacroContext};
use crate::record::{
    looks_like_spf, DualCidr, Mechanism, Modifier, Qualifier, RecordParseError, SpfRecord, Term,
};
use crate::SpfResult;
use mailval_dns::resolver::ResolveOutcome;
use mailval_dns::rr::{RData, RecordType};
use mailval_dns::Name;
use std::collections::{HashMap, HashSet, VecDeque};
use std::net::IpAddr;

/// A DNS question the evaluator needs answered.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DnsQuestion {
    /// Name to query.
    pub name: Name,
    /// Record type to query.
    pub rtype: RecordType,
}

/// What to do next.
#[derive(Debug, Clone)]
pub enum EvalStep {
    /// Resolve these questions and call [`SpfEvaluator::resume`].
    /// Serial mode always emits exactly one; parallel-prefetch mode may
    /// emit several (resolve them concurrently).
    NeedLookups(Vec<DnsQuestion>),
    /// Evaluation finished.
    Done(SpfEvaluation),
}

/// How a validator handles multiple SPF records at one name (§7.3 of the
/// paper: 77% correctly error out, 23% follow one of the records).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiRecordPolicy {
    /// RFC 7208 §4.5: `permerror`.
    PermError,
    /// Non-compliant: evaluate the first record returned.
    FollowFirst,
}

/// Compliance knobs. `Default` is strict RFC 7208.
#[derive(Debug, Clone)]
pub struct SpfBehavior {
    /// §4.6.4 limit on DNS-querying terms (10).
    pub max_dns_mechanisms: u32,
    /// Enforce the term limit (violated by 39% of MTAs in Fig. 5 of the
    /// paper; 28% executed all 46 queries of the stress policy).
    pub enforce_lookup_limit: bool,
    /// §4.6.4 void-lookup limit (2).
    pub max_void_lookups: u32,
    /// Enforce the void limit (97% of measured MTAs exceeded it).
    pub enforce_void_limit: bool,
    /// §4.6.4 limit on address lookups per `mx` term (10).
    pub max_mx_addr_lookups: u32,
    /// Enforce the per-`mx` limit (92% of measured MTAs violated it).
    pub enforce_mx_limit: bool,
    /// Skip syntactically invalid terms instead of returning `permerror`
    /// (5.5% of measured MTAs kept evaluating past errors).
    pub skip_invalid_terms: bool,
    /// Treat `permerror` from an included policy as "no match" instead of
    /// propagating it (12.3% of measured MTAs).
    pub ignore_include_permerror: bool,
    /// After a failed `mx` lookup, issue the A/AAAA fallback query that
    /// RFC 5321 mail routing would use — explicitly disallowed by RFC
    /// 7208 §5.4 (14% of measured MTAs do it anyway).
    pub mx_fallback_a_lookup: bool,
    /// Multiple-record handling.
    pub on_multiple_records: MultiRecordPolicy,
    /// Emit all of a record's lookups at once instead of on demand
    /// (3% of measured MTAs, §7.1).
    pub parallel_prefetch: bool,
    /// Include recursion depth cap (not in the RFC; loop protection).
    pub max_include_depth: u32,
}

impl Default for SpfBehavior {
    fn default() -> Self {
        SpfBehavior {
            max_dns_mechanisms: 10,
            enforce_lookup_limit: true,
            max_void_lookups: 2,
            enforce_void_limit: true,
            max_mx_addr_lookups: 10,
            enforce_mx_limit: true,
            skip_invalid_terms: false,
            ignore_include_permerror: false,
            mx_fallback_a_lookup: false,
            on_multiple_records: MultiRecordPolicy::PermError,
            parallel_prefetch: false,
            max_include_depth: 15,
        }
    }
}

/// Inputs to `check_host()`.
#[derive(Debug, Clone)]
pub struct EvalParams {
    /// The connecting client's IP.
    pub ip: IpAddr,
    /// The domain whose policy is evaluated (MAIL FROM domain, or the
    /// HELO identity for a HELO check).
    pub domain: Name,
    /// Sender local part (`postmaster` when MAIL FROM was null, §4.3).
    pub sender_local: String,
    /// Sender domain (usually equals `domain`).
    pub sender_domain: Name,
    /// HELO/EHLO identity.
    pub helo: String,
}

impl EvalParams {
    fn macro_ctx(&self, current_domain: &Name) -> MacroContext {
        MacroContext {
            sender: format!("{}@{}", self.sender_local, self.sender_domain),
            local_part: self.sender_local.clone(),
            sender_domain: self.sender_domain.to_string(),
            domain: current_domain.to_string(),
            ip: self.ip,
            helo: self.helo.clone(),
        }
    }
}

/// The completed evaluation.
#[derive(Debug, Clone)]
pub struct SpfEvaluation {
    /// The SPF result.
    pub result: SpfResult,
    /// DNS-querying terms processed (§4.6.4 counter).
    pub dns_mechanism_terms: u32,
    /// Void lookups observed.
    pub void_lookups: u32,
    /// Total DNS questions emitted.
    pub queries_issued: u32,
    /// Text of the mechanism that decided the result, if any.
    pub matched_term: Option<String>,
    /// Human-readable error detail for temperror/permerror.
    pub error: Option<String>,
    /// An include/redirect cycle was detected and broken (typed flag
    /// for hostile-input classification).
    pub cycle_detected: bool,
    /// A DNS-term or void-lookup budget was exhausted (typed flag for
    /// hostile-input classification).
    pub lookups_exhausted: bool,
}

#[derive(Debug)]
enum RecordPurpose {
    Initial,
    Include { qualifier: Qualifier },
    Redirect,
}

#[derive(Debug)]
enum Waiting {
    /// TXT lookup to fetch a policy.
    Record {
        domain: Name,
        purpose: RecordPurpose,
    },
    /// A/AAAA lookup for an `a` mechanism.
    MechAddr {
        qualifier: Qualifier,
        cidr: DualCidr,
        term: String,
    },
    /// A lookup for an `exists` mechanism (always type A, §5.7).
    Exists { qualifier: Qualifier, term: String },
    /// MX list lookup for an `mx` mechanism.
    MxList {
        qualifier: Qualifier,
        cidr: DualCidr,
        term: String,
        mx_domain: Name,
    },
    /// Per-exchange address lookups for an `mx` mechanism.
    MxAddr {
        qualifier: Qualifier,
        cidr: DualCidr,
        term: String,
        remaining: VecDeque<Name>,
        looked: u32,
    },
    /// Non-compliant A/AAAA fallback after a void `mx` lookup.
    MxFallbackAddr {
        qualifier: Qualifier,
        cidr: DualCidr,
        term: String,
    },
    /// PTR list lookup for a `ptr` mechanism.
    PtrList {
        qualifier: Qualifier,
        target: Name,
        term: String,
    },
    /// Forward-confirmation lookups for `ptr`.
    PtrConfirm {
        qualifier: Qualifier,
        target: Name,
        term: String,
        remaining: VecDeque<Name>,
        current: Name,
    },
}

#[derive(Debug)]
struct Frame {
    record: SpfRecord,
    idx: usize,
    domain: Name,
    /// Qualifier of the `include` that spawned this frame (None for the
    /// root / redirect continuations).
    on_pass_qualifier: Option<Qualifier>,
    /// Domains this frame already occupied via `redirect=` hops. A
    /// redirect targeting any of them (or the current domain) is a
    /// cycle and permerrors instead of looping forever.
    redirect_trail: Vec<Name>,
}

/// The resumable evaluator. Create one per `check_host()` invocation.
pub struct SpfEvaluator {
    params: EvalParams,
    behavior: SpfBehavior,
    frames: Vec<Frame>,
    waiting: Option<(DnsQuestion, Waiting)>,
    inbox: HashMap<DnsQuestion, ResolveOutcome>,
    /// Outcomes already consumed once, kept so a policy that repeats a
    /// term (e.g. `mx mx`) is served from this evaluation-local cache —
    /// exactly what a co-located resolver cache would do.
    answered: HashMap<DnsQuestion, ResolveOutcome>,
    requested: HashSet<DnsQuestion>,
    pending_prefetch: Vec<DnsQuestion>,
    dns_terms: u32,
    voids: u32,
    queries: u32,
    started: bool,
    cycle_detected: bool,
    lookups_exhausted: bool,
}

impl SpfEvaluator {
    /// Create an evaluator.
    pub fn new(params: EvalParams, behavior: SpfBehavior) -> Self {
        SpfEvaluator {
            params,
            behavior,
            frames: Vec::new(),
            waiting: None,
            inbox: HashMap::new(),
            answered: HashMap::new(),
            requested: HashSet::new(),
            pending_prefetch: Vec::new(),
            dns_terms: 0,
            voids: 0,
            queries: 0,
            started: false,
            cycle_detected: false,
            lookups_exhausted: false,
        }
    }

    /// The address-record type matching the client IP family.
    fn addr_rtype(&self) -> RecordType {
        match self.params.ip {
            IpAddr::V4(_) => RecordType::A,
            IpAddr::V6(_) => RecordType::Aaaa,
        }
    }

    /// Begin evaluation: emits the initial TXT lookup.
    pub fn start(&mut self) -> EvalStep {
        assert!(!self.started, "start() called twice");
        self.started = true;
        let domain = self.params.domain.clone();
        self.await_lookup(
            DnsQuestion {
                name: domain.clone(),
                rtype: RecordType::Txt,
            },
            Waiting::Record {
                domain,
                purpose: RecordPurpose::Initial,
            },
        )
    }

    /// Feed answers for previously requested questions, then continue.
    pub fn resume(&mut self, answers: Vec<(DnsQuestion, ResolveOutcome)>) -> EvalStep {
        for (q, outcome) in answers {
            self.inbox.insert(q, outcome);
        }
        self.drive()
    }

    fn await_lookup(&mut self, question: DnsQuestion, waiting: Waiting) -> EvalStep {
        self.waiting = Some((question, waiting));
        self.drive()
    }

    fn drive(&mut self) -> EvalStep {
        loop {
            match self.waiting.take() {
                Some((question, waiting)) => {
                    let ready = self
                        .inbox
                        .remove(&question)
                        .or_else(|| self.answered.get(&question).cloned());
                    if let Some(outcome) = ready {
                        self.answered.insert(question, outcome.clone());
                        if let Some(EvalStep::Done(done)) = self.apply(waiting, outcome) {
                            return EvalStep::Done(done);
                        }
                        continue;
                    }
                    // Not yet answered: request it (once), along with any
                    // parallel-prefetch questions queued up.
                    let mut need = Vec::new();
                    if self.requested.insert(question.clone()) {
                        self.queries += 1;
                        need.push(question.clone());
                    }
                    for q in std::mem::take(&mut self.pending_prefetch) {
                        if self.requested.insert(q.clone()) {
                            self.queries += 1;
                            need.push(q);
                        }
                    }
                    self.waiting = Some((question, waiting));
                    // `need` may be empty if everything was already
                    // requested; the caller still owes us answers.
                    return EvalStep::NeedLookups(need);
                }
                None => {
                    if let Some(EvalStep::Done(done)) = self.advance() {
                        return EvalStep::Done(done);
                    }
                    // advance() either set up a new waiting state or
                    // concluded an include child; loop around.
                }
            }
        }
    }

    /// Finish with a result.
    fn done(
        &mut self,
        result: SpfResult,
        matched: Option<String>,
        error: Option<String>,
    ) -> EvalStep {
        self.frames.clear();
        EvalStep::Done(SpfEvaluation {
            result,
            dns_mechanism_terms: self.dns_terms,
            void_lookups: self.voids,
            queries_issued: self.queries,
            matched_term: matched,
            error,
            cycle_detected: self.cycle_detected,
            lookups_exhausted: self.lookups_exhausted,
        })
    }

    /// A frame concluded with `result`; propagate through includes.
    /// Returns Some(step) if the whole evaluation is done.
    fn conclude_frame(
        &mut self,
        result: SpfResult,
        matched: Option<String>,
        error: Option<String>,
    ) -> Option<EvalStep> {
        let frame = self.frames.pop().expect("conclude without frame");
        match frame.on_pass_qualifier {
            None => Some(self.done(result, matched, error)),
            Some(qualifier) => {
                // This was an include child (RFC 7208 §5.2 table).
                match result {
                    SpfResult::Pass => {
                        // Include matched: parent mechanism matches.
                        self.mechanism_matched(qualifier, matched.unwrap_or_default())
                    }
                    SpfResult::Fail | SpfResult::SoftFail | SpfResult::Neutral => {
                        // Not a match; parent continues.
                        None
                    }
                    SpfResult::TempError => Some(self.done(
                        SpfResult::TempError,
                        None,
                        error.or(Some("temperror in included policy".into())),
                    )),
                    SpfResult::PermError | SpfResult::None => {
                        if self.behavior.ignore_include_permerror {
                            None // non-compliant: keep evaluating parent
                        } else {
                            Some(self.done(
                                SpfResult::PermError,
                                None,
                                error.or(Some("permerror in included policy".into())),
                            ))
                        }
                    }
                }
            }
        }
    }

    /// A mechanism with `qualifier` matched in the current frame.
    fn mechanism_matched(&mut self, qualifier: Qualifier, term: String) -> Option<EvalStep> {
        let result = match qualifier {
            Qualifier::Pass => SpfResult::Pass,
            Qualifier::Fail => SpfResult::Fail,
            Qualifier::SoftFail => SpfResult::SoftFail,
            Qualifier::Neutral => SpfResult::Neutral,
        };
        if result == SpfResult::Pass {
            // A Pass inside an include propagates as "include matched".
            self.conclude_frame(SpfResult::Pass, Some(term), None)
        } else {
            self.conclude_frame(result, Some(term), None)
        }
    }

    /// Expand a domain-spec in the current frame's context.
    fn expand_spec(&self, spec: &str) -> Result<Name, String> {
        let frame = self.frames.last().expect("no frame");
        let ctx = self.params.macro_ctx(&frame.domain);
        let expanded = expand(spec, &ctx, false).map_err(|e| e.to_string())?;
        // §7.3: if the expansion exceeds 253 chars, drop left labels; we
        // approximate by letting Name::parse reject and erroring.
        Name::parse(&expanded).map_err(|e| e.to_string())
    }

    fn current_domain(&self) -> Name {
        self.frames.last().expect("no frame").domain.clone()
    }

    /// Count a DNS-querying term; returns an error step on limit breach.
    fn count_dns_term(&mut self) -> Option<EvalStep> {
        self.dns_terms += 1;
        if self.behavior.enforce_lookup_limit && self.dns_terms > self.behavior.max_dns_mechanisms {
            self.lookups_exhausted = true;
            return Some(self.done(
                SpfResult::PermError,
                None,
                Some(format!(
                    "too many DNS-querying mechanisms (> {})",
                    self.behavior.max_dns_mechanisms
                )),
            ));
        }
        None
    }

    /// Count a void lookup; returns an error step on limit breach.
    fn count_void(&mut self) -> Option<EvalStep> {
        self.voids += 1;
        if self.behavior.enforce_void_limit && self.voids > self.behavior.max_void_lookups {
            self.lookups_exhausted = true;
            return Some(self.done(
                SpfResult::PermError,
                None,
                Some(format!(
                    "too many void lookups (> {})",
                    self.behavior.max_void_lookups
                )),
            ));
        }
        None
    }

    /// Move to the next term of the top frame; set up `waiting` or
    /// conclude. Returns Some(step) when the evaluation is done.
    fn advance(&mut self) -> Option<EvalStep> {
        loop {
            let Some(frame) = self.frames.last_mut() else {
                unreachable!("advance without frames");
            };
            if frame.idx >= frame.record.terms.len() {
                // No mechanism matched: redirect or default Neutral.
                let redirect = frame.record.terms.iter().find_map(|t| match t {
                    Term::Modifier(Modifier::Redirect { domain_spec }) => Some(domain_spec.clone()),
                    _ => None,
                });
                match redirect {
                    Some(spec) => {
                        if let Some(step) = self.count_dns_term() {
                            return Some(step);
                        }
                        let target = match self.expand_spec(&spec) {
                            Ok(t) => t,
                            Err(e) => {
                                return self.conclude_frame(
                                    SpfResult::PermError,
                                    None,
                                    Some(format!("bad redirect target: {e}")),
                                )
                            }
                        };
                        // Cycle guard: policy content is a pure function
                        // of the domain, so revisiting a domain this
                        // frame already occupied can only loop forever.
                        let cycle = {
                            let frame = self.frames.last().expect("redirect without frame");
                            frame.domain == target || frame.redirect_trail.contains(&target)
                        };
                        if cycle {
                            self.cycle_detected = true;
                            return self.conclude_frame(
                                SpfResult::PermError,
                                None,
                                Some(format!("redirect loop at {target}")),
                            );
                        }
                        let frame = self.frames.last_mut().expect("redirect without frame");
                        let leaving = frame.domain.clone();
                        frame.redirect_trail.push(leaving);
                        // Replace this frame's record via a TXT fetch.
                        self.waiting = Some((
                            DnsQuestion {
                                name: target.clone(),
                                rtype: RecordType::Txt,
                            },
                            Waiting::Record {
                                domain: target,
                                purpose: RecordPurpose::Redirect,
                            },
                        ));
                        return None;
                    }
                    None => {
                        // RFC 7208 §4.7 default result.
                        return self.conclude_frame(SpfResult::Neutral, None, None);
                    }
                }
            }
            let term = frame.record.terms[frame.idx].clone();
            frame.idx += 1;
            match term {
                Term::Modifier(_) => continue, // handled at end / ignored
                Term::Mechanism(qualifier, mech) => match self.process_mechanism(qualifier, mech) {
                    ProcessOutcome::Continue => continue,
                    ProcessOutcome::Await => return None,
                    ProcessOutcome::Finished(step) => return Some(step),
                },
            }
        }
    }

    fn process_mechanism(&mut self, qualifier: Qualifier, mech: Mechanism) -> ProcessOutcome {
        let term_text = format!("{mech:?}");
        match mech {
            Mechanism::All => match self.mechanism_matched(qualifier, "all".into()) {
                Some(step) => ProcessOutcome::Finished(step),
                None => ProcessOutcome::Continue,
            },
            Mechanism::Ip4(net) => {
                if let IpAddr::V4(ip) = self.params.ip {
                    if net.contains(ip) {
                        return match self.mechanism_matched(qualifier, term_text) {
                            Some(step) => ProcessOutcome::Finished(step),
                            None => ProcessOutcome::Continue,
                        };
                    }
                }
                ProcessOutcome::Continue
            }
            Mechanism::Ip6(net) => {
                if let IpAddr::V6(ip) = self.params.ip {
                    if net.contains(ip) {
                        return match self.mechanism_matched(qualifier, term_text) {
                            Some(step) => ProcessOutcome::Finished(step),
                            None => ProcessOutcome::Continue,
                        };
                    }
                }
                ProcessOutcome::Continue
            }
            Mechanism::A { domain_spec, cidr } => {
                if let Some(step) = self.count_dns_term() {
                    return ProcessOutcome::Finished(step);
                }
                let target = match domain_spec {
                    Some(spec) => match self.expand_spec(&spec) {
                        Ok(t) => t,
                        Err(e) => return self.perm(format!("bad a target: {e}")),
                    },
                    None => self.current_domain(),
                };
                let rtype = self.addr_rtype();
                self.waiting = Some((
                    DnsQuestion {
                        name: target,
                        rtype,
                    },
                    Waiting::MechAddr {
                        qualifier,
                        cidr,
                        term: term_text,
                    },
                ));
                ProcessOutcome::Await
            }
            Mechanism::Mx { domain_spec, cidr } => {
                if let Some(step) = self.count_dns_term() {
                    return ProcessOutcome::Finished(step);
                }
                let target = match domain_spec {
                    Some(spec) => match self.expand_spec(&spec) {
                        Ok(t) => t,
                        Err(e) => return self.perm(format!("bad mx target: {e}")),
                    },
                    None => self.current_domain(),
                };
                self.waiting = Some((
                    DnsQuestion {
                        name: target.clone(),
                        rtype: RecordType::Mx,
                    },
                    Waiting::MxList {
                        qualifier,
                        cidr,
                        term: term_text,
                        mx_domain: target,
                    },
                ));
                ProcessOutcome::Await
            }
            Mechanism::Ptr { domain_spec } => {
                if let Some(step) = self.count_dns_term() {
                    return ProcessOutcome::Finished(step);
                }
                let target = match domain_spec {
                    Some(spec) => match self.expand_spec(&spec) {
                        Ok(t) => t,
                        Err(e) => return self.perm(format!("bad ptr target: {e}")),
                    },
                    None => self.current_domain(),
                };
                let rev = reverse_name(self.params.ip);
                self.waiting = Some((
                    DnsQuestion {
                        name: rev,
                        rtype: RecordType::Ptr,
                    },
                    Waiting::PtrList {
                        qualifier,
                        target,
                        term: term_text,
                    },
                ));
                ProcessOutcome::Await
            }
            Mechanism::Exists { domain_spec } => {
                if let Some(step) = self.count_dns_term() {
                    return ProcessOutcome::Finished(step);
                }
                let target = match self.expand_spec(&domain_spec) {
                    Ok(t) => t,
                    Err(e) => return self.perm(format!("bad exists target: {e}")),
                };
                self.waiting = Some((
                    DnsQuestion {
                        name: target,
                        // Always A, even for IPv6 clients (§5.7).
                        rtype: RecordType::A,
                    },
                    Waiting::Exists {
                        qualifier,
                        term: term_text,
                    },
                ));
                ProcessOutcome::Await
            }
            Mechanism::Include { domain_spec } => {
                if let Some(step) = self.count_dns_term() {
                    return ProcessOutcome::Finished(step);
                }
                if self.frames.len() as u32 >= self.behavior.max_include_depth {
                    return self.perm("include recursion too deep".into());
                }
                let target = match self.expand_spec(&domain_spec) {
                    Ok(t) => t,
                    Err(e) => return self.perm(format!("bad include target: {e}")),
                };
                // Cycle guard: including a domain that is already an
                // active ancestor (self-include, two-node cycles, …)
                // re-evaluates the identical record and can only
                // recurse until the depth cap; permerror immediately.
                if self.frames.iter().any(|f| f.domain == target) {
                    self.cycle_detected = true;
                    return self.perm(format!("include loop at {target}"));
                }
                self.waiting = Some((
                    DnsQuestion {
                        name: target.clone(),
                        rtype: RecordType::Txt,
                    },
                    Waiting::Record {
                        domain: target,
                        purpose: RecordPurpose::Include { qualifier },
                    },
                ));
                ProcessOutcome::Await
            }
        }
    }

    fn perm(&mut self, error: String) -> ProcessOutcome {
        if self.behavior.skip_invalid_terms {
            return ProcessOutcome::Continue;
        }
        match self.conclude_frame(SpfResult::PermError, None, Some(error)) {
            Some(step) => ProcessOutcome::Finished(step),
            None => ProcessOutcome::Continue,
        }
    }

    /// Apply an answered lookup. Returns Some(Done) if finished, None to
    /// keep driving.
    fn apply(&mut self, waiting: Waiting, outcome: ResolveOutcome) -> Option<EvalStep> {
        match waiting {
            Waiting::Record { domain, purpose } => self.apply_record(domain, purpose, outcome),
            Waiting::MechAddr {
                qualifier,
                cidr,
                term,
            } => self.apply_addresses(qualifier, cidr, term, outcome),
            Waiting::Exists { qualifier, term } => match outcome {
                ResolveOutcome::Records(records)
                    if records.iter().any(|r| r.rtype() == RecordType::A) =>
                {
                    self.mechanism_matched(qualifier, term)
                }
                ResolveOutcome::Timeout | ResolveOutcome::ServFail => Some(self.done(
                    SpfResult::TempError,
                    None,
                    Some("exists lookup failed".into()),
                )),
                other => {
                    if other.is_void() {
                        if let Some(step) = self.count_void() {
                            return Some(step);
                        }
                    }
                    None
                }
            },
            Waiting::MxList {
                qualifier,
                cidr,
                term,
                mx_domain,
            } => self.apply_mx_list(qualifier, cidr, term, mx_domain, outcome),
            Waiting::MxAddr {
                qualifier,
                cidr,
                term,
                remaining,
                looked,
            } => self.apply_mx_addr(qualifier, cidr, term, remaining, looked, outcome),
            Waiting::MxFallbackAddr {
                qualifier,
                cidr,
                term,
            } => {
                // Non-compliant fallback: match like an `a` mechanism.
                self.apply_addresses(qualifier, cidr, term, outcome)
            }
            Waiting::PtrList {
                qualifier,
                target,
                term,
            } => self.apply_ptr_list(qualifier, target, term, outcome),
            Waiting::PtrConfirm {
                qualifier,
                target,
                term,
                remaining,
                current,
            } => self.apply_ptr_confirm(qualifier, target, term, remaining, current, outcome),
        }
    }

    fn apply_record(
        &mut self,
        domain: Name,
        purpose: RecordPurpose,
        outcome: ResolveOutcome,
    ) -> Option<EvalStep> {
        let spf_strings: Vec<String> = match &outcome {
            ResolveOutcome::Records(records) => records
                .iter()
                .filter_map(|r| r.rdata.txt_joined())
                .filter(|s| looks_like_spf(s))
                .collect(),
            ResolveOutcome::NoData | ResolveOutcome::NxDomain => Vec::new(),
            ResolveOutcome::Timeout | ResolveOutcome::ServFail => {
                return match purpose {
                    RecordPurpose::Initial => Some(self.done(
                        SpfResult::TempError,
                        None,
                        Some("policy lookup failed".into()),
                    )),
                    _ => Some(self.done(
                        SpfResult::TempError,
                        None,
                        Some("nested policy lookup failed".into()),
                    )),
                };
            }
        };

        let no_record_result = |purpose: &RecordPurpose| match purpose {
            // §4.5: no SPF record → None.
            RecordPurpose::Initial => SpfResult::None,
            // §5.2: include target without a record → PermError.
            RecordPurpose::Include { .. } => SpfResult::PermError,
            // §6.1: redirect target without a record → PermError.
            RecordPurpose::Redirect => SpfResult::PermError,
        };

        if spf_strings.is_empty() {
            // Void lookup accounting applies to include/redirect fetches.
            if !matches!(purpose, RecordPurpose::Initial) && outcome.is_void() {
                if let Some(step) = self.count_void() {
                    return Some(step);
                }
            }
            let result = no_record_result(&purpose);
            return match purpose {
                RecordPurpose::Initial => Some(self.done(result, None, None)),
                RecordPurpose::Include { qualifier } => {
                    // Synthesize a concluded child frame.
                    self.frames.push(Frame {
                        record: SpfRecord::default(),
                        idx: 0,
                        domain,
                        on_pass_qualifier: Some(qualifier),
                        redirect_trail: Vec::new(),
                    });
                    self.conclude_frame(
                        result,
                        None,
                        Some("no SPF record at include target".into()),
                    )
                }
                RecordPurpose::Redirect => self.conclude_frame(
                    result,
                    None,
                    Some("no SPF record at redirect target".into()),
                ),
            };
        }

        let chosen = if spf_strings.len() > 1 {
            match self.behavior.on_multiple_records {
                MultiRecordPolicy::PermError => {
                    let err = Some("multiple SPF records".to_string());
                    return match purpose {
                        RecordPurpose::Initial => Some(self.done(SpfResult::PermError, None, err)),
                        RecordPurpose::Include { qualifier } => {
                            self.frames.push(Frame {
                                record: SpfRecord::default(),
                                idx: 0,
                                domain,
                                on_pass_qualifier: Some(qualifier),
                                redirect_trail: Vec::new(),
                            });
                            self.conclude_frame(SpfResult::PermError, None, err)
                        }
                        RecordPurpose::Redirect => {
                            self.conclude_frame(SpfResult::PermError, None, err)
                        }
                    };
                }
                MultiRecordPolicy::FollowFirst => spf_strings[0].clone(),
            }
        } else {
            spf_strings[0].clone()
        };

        let record = match self.parse_with_behavior(&chosen) {
            Ok(r) => r,
            Err(e) => {
                let err = Some(format!("syntax error: {e}"));
                return match purpose {
                    RecordPurpose::Initial => Some(self.done(SpfResult::PermError, None, err)),
                    RecordPurpose::Include { qualifier } => {
                        self.frames.push(Frame {
                            record: SpfRecord::default(),
                            idx: 0,
                            domain,
                            on_pass_qualifier: Some(qualifier),
                            redirect_trail: Vec::new(),
                        });
                        self.conclude_frame(SpfResult::PermError, None, err)
                    }
                    RecordPurpose::Redirect => self.conclude_frame(SpfResult::PermError, None, err),
                };
            }
        };

        if self.behavior.parallel_prefetch {
            self.prefetch_record_lookups(&record, &domain);
        }

        match purpose {
            RecordPurpose::Initial => {
                self.frames.push(Frame {
                    record,
                    idx: 0,
                    domain,
                    on_pass_qualifier: None,
                    redirect_trail: Vec::new(),
                });
            }
            RecordPurpose::Include { qualifier } => {
                self.frames.push(Frame {
                    record,
                    idx: 0,
                    domain,
                    on_pass_qualifier: Some(qualifier),
                    redirect_trail: Vec::new(),
                });
            }
            RecordPurpose::Redirect => {
                let frame = self.frames.last_mut().expect("redirect without frame");
                frame.record = record;
                frame.idx = 0;
                frame.domain = domain;
            }
        }
        None
    }

    /// Parse a record; with `skip_invalid_terms`, drop bad terms instead
    /// of failing (the §7.3 lenient-validator behavior).
    fn parse_with_behavior(&self, txt: &str) -> Result<SpfRecord, RecordParseError> {
        match SpfRecord::parse(txt) {
            Ok(r) => Ok(r),
            Err(RecordParseError::NotSpf) => Err(RecordParseError::NotSpf),
            Err(e) => {
                if !self.behavior.skip_invalid_terms {
                    return Err(e);
                }
                // Re-parse term by term, skipping the bad ones.
                let body = txt.trim_start()[6..].trim();
                let mut terms = Vec::new();
                for (i, raw) in body.split_ascii_whitespace().enumerate() {
                    if let Ok(t) = SpfRecord::parse_term(raw, i) {
                        terms.push(t);
                    }
                }
                Ok(SpfRecord { terms })
            }
        }
    }

    /// Parallel-prefetch: mark every lookup this record will need as
    /// requested and emit it on the next NeedLookups.
    fn prefetch_record_lookups(&mut self, record: &SpfRecord, domain: &Name) {
        let ctx = self.params.macro_ctx(domain);
        let addr_rtype = self.addr_rtype();
        let mut extra: Vec<DnsQuestion> = Vec::new();
        for term in &record.terms {
            let q = match term {
                Term::Mechanism(_, Mechanism::Include { domain_spec })
                | Term::Modifier(Modifier::Redirect { domain_spec }) => {
                    expand(domain_spec, &ctx, false)
                        .ok()
                        .and_then(|d| Name::parse(&d).ok())
                        .map(|name| DnsQuestion {
                            name,
                            rtype: RecordType::Txt,
                        })
                }
                Term::Mechanism(_, Mechanism::A { domain_spec, .. }) => {
                    let name = match domain_spec {
                        Some(spec) => expand(spec, &ctx, false)
                            .ok()
                            .and_then(|d| Name::parse(&d).ok()),
                        None => Some(domain.clone()),
                    };
                    name.map(|name| DnsQuestion {
                        name,
                        rtype: addr_rtype,
                    })
                }
                Term::Mechanism(_, Mechanism::Mx { domain_spec, .. }) => {
                    let name = match domain_spec {
                        Some(spec) => expand(spec, &ctx, false)
                            .ok()
                            .and_then(|d| Name::parse(&d).ok()),
                        None => Some(domain.clone()),
                    };
                    name.map(|name| DnsQuestion {
                        name,
                        rtype: RecordType::Mx,
                    })
                }
                Term::Mechanism(_, Mechanism::Exists { domain_spec }) => {
                    expand(domain_spec, &ctx, false)
                        .ok()
                        .and_then(|d| Name::parse(&d).ok())
                        .map(|name| DnsQuestion {
                            name,
                            rtype: RecordType::A,
                        })
                }
                Term::Mechanism(_, Mechanism::Ptr { .. }) => Some(DnsQuestion {
                    name: reverse_name(self.params.ip),
                    rtype: RecordType::Ptr,
                }),
                _ => None,
            };
            if let Some(q) = q {
                if !self.requested.contains(&q) && !self.inbox.contains_key(&q) {
                    extra.push(q);
                }
            }
        }
        // Stash as pre-requested; drive() will emit them alongside the next
        // on-demand question via `pending_prefetch`.
        self.pending_prefetch.extend(extra);
    }

    fn apply_addresses(
        &mut self,
        qualifier: Qualifier,
        cidr: DualCidr,
        term: String,
        outcome: ResolveOutcome,
    ) -> Option<EvalStep> {
        match outcome {
            ResolveOutcome::Records(records) => {
                if self.any_addr_matches(&records, cidr) {
                    return self.mechanism_matched(qualifier, term);
                }
                None
            }
            ResolveOutcome::Timeout | ResolveOutcome::ServFail => Some(self.done(
                SpfResult::TempError,
                None,
                Some("address lookup failed".into()),
            )),
            other => {
                if other.is_void() {
                    if let Some(step) = self.count_void() {
                        return Some(step);
                    }
                }
                None
            }
        }
    }

    fn any_addr_matches(&self, records: &[mailval_dns::Record], cidr: DualCidr) -> bool {
        records.iter().any(|r| match (&r.rdata, self.params.ip) {
            (RData::A(a), IpAddr::V4(ip)) => crate::record::Ipv4Net {
                addr: *a,
                prefix: cidr.v4,
            }
            .contains(ip),
            (RData::Aaaa(a), IpAddr::V6(ip)) => crate::record::Ipv6Net {
                addr: *a,
                prefix: cidr.v6,
            }
            .contains(ip),
            _ => false,
        })
    }

    fn apply_mx_list(
        &mut self,
        qualifier: Qualifier,
        cidr: DualCidr,
        term: String,
        mx_domain: Name,
        outcome: ResolveOutcome,
    ) -> Option<EvalStep> {
        match outcome {
            ResolveOutcome::Records(records) => {
                let mut exchanges: Vec<(u16, Name)> = records
                    .iter()
                    .filter_map(|r| match &r.rdata {
                        RData::Mx {
                            preference,
                            exchange,
                        } => Some((*preference, exchange.clone())),
                        _ => None,
                    })
                    .collect();
                exchanges.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
                let remaining: VecDeque<Name> =
                    exchanges.into_iter().map(|(_, name)| name).collect();
                if remaining.is_empty() {
                    if let Some(step) = self.count_void() {
                        return Some(step);
                    }
                    return self.maybe_mx_fallback(qualifier, cidr, term, mx_domain);
                }
                self.next_mx_addr(qualifier, cidr, term, remaining, 0)
            }
            ResolveOutcome::Timeout | ResolveOutcome::ServFail => {
                Some(self.done(SpfResult::TempError, None, Some("mx lookup failed".into())))
            }
            other => {
                if other.is_void() {
                    if let Some(step) = self.count_void() {
                        return Some(step);
                    }
                }
                self.maybe_mx_fallback(qualifier, cidr, term, mx_domain)
            }
        }
    }

    /// §7.3 of the paper: 14% of MTAs follow a failed `mx` lookup with an
    /// address query, which RFC 7208 §5.4 explicitly disallows.
    fn maybe_mx_fallback(
        &mut self,
        qualifier: Qualifier,
        cidr: DualCidr,
        term: String,
        mx_domain: Name,
    ) -> Option<EvalStep> {
        if !self.behavior.mx_fallback_a_lookup {
            return None;
        }
        let rtype = self.addr_rtype();
        self.waiting = Some((
            DnsQuestion {
                name: mx_domain,
                rtype,
            },
            Waiting::MxFallbackAddr {
                qualifier,
                cidr,
                term,
            },
        ));
        None
    }

    fn next_mx_addr(
        &mut self,
        qualifier: Qualifier,
        cidr: DualCidr,
        term: String,
        mut remaining: VecDeque<Name>,
        looked: u32,
    ) -> Option<EvalStep> {
        if looked >= self.behavior.max_mx_addr_lookups && self.behavior.enforce_mx_limit {
            // §4.6.4: MUST permerror past 10 address lookups per mx term.
            return Some(self.done(
                SpfResult::PermError,
                None,
                Some("too many mx address lookups".into()),
            ));
        }
        let Some(next) = remaining.pop_front() else {
            return None; // exhausted: no match, continue evaluation
        };
        let rtype = self.addr_rtype();
        self.waiting = Some((
            DnsQuestion { name: next, rtype },
            Waiting::MxAddr {
                qualifier,
                cidr,
                term,
                remaining,
                looked: looked + 1,
            },
        ));
        None
    }

    fn apply_mx_addr(
        &mut self,
        qualifier: Qualifier,
        cidr: DualCidr,
        term: String,
        remaining: VecDeque<Name>,
        looked: u32,
        outcome: ResolveOutcome,
    ) -> Option<EvalStep> {
        match outcome {
            ResolveOutcome::Records(records) => {
                if self.any_addr_matches(&records, cidr) {
                    return self.mechanism_matched(qualifier, term);
                }
            }
            ResolveOutcome::Timeout | ResolveOutcome::ServFail => {
                return Some(self.done(
                    SpfResult::TempError,
                    None,
                    Some("mx address lookup failed".into()),
                ));
            }
            other => {
                if other.is_void() {
                    if let Some(step) = self.count_void() {
                        return Some(step);
                    }
                }
            }
        }
        self.next_mx_addr(qualifier, cidr, term, remaining, looked)
    }

    fn apply_ptr_list(
        &mut self,
        qualifier: Qualifier,
        target: Name,
        term: String,
        outcome: ResolveOutcome,
    ) -> Option<EvalStep> {
        match outcome {
            ResolveOutcome::Records(records) => {
                let mut names: VecDeque<Name> = records
                    .iter()
                    .filter_map(|r| match &r.rdata {
                        RData::Ptr(name) => Some(name.clone()),
                        _ => None,
                    })
                    .take(10) // §5.5: only the first 10 are evaluated
                    .collect();
                let Some(first) = names.pop_front() else {
                    if let Some(step) = self.count_void() {
                        return Some(step);
                    }
                    return None;
                };
                let rtype = self.addr_rtype();
                self.waiting = Some((
                    DnsQuestion {
                        name: first.clone(),
                        rtype,
                    },
                    Waiting::PtrConfirm {
                        qualifier,
                        target,
                        term,
                        remaining: names,
                        current: first,
                    },
                ));
                None
            }
            // §5.5: if the PTR lookup errors, the mechanism does not match
            // (no temperror).
            _ => {
                if outcome.is_void() {
                    if let Some(step) = self.count_void() {
                        return Some(step);
                    }
                }
                None
            }
        }
    }

    fn apply_ptr_confirm(
        &mut self,
        qualifier: Qualifier,
        target: Name,
        term: String,
        mut remaining: VecDeque<Name>,
        current: Name,
        outcome: ResolveOutcome,
    ) -> Option<EvalStep> {
        if let ResolveOutcome::Records(records) = &outcome {
            let confirmed = records.iter().any(|r| match (&r.rdata, self.params.ip) {
                (RData::A(a), IpAddr::V4(ip)) => *a == ip,
                (RData::Aaaa(a), IpAddr::V6(ip)) => *a == ip,
                _ => false,
            });
            if confirmed && current.is_subdomain_of(&target) {
                return self.mechanism_matched(qualifier, term);
            }
        }
        let next = remaining.pop_front()?;
        let rtype = self.addr_rtype();
        self.waiting = Some((
            DnsQuestion {
                name: next.clone(),
                rtype,
            },
            Waiting::PtrConfirm {
                qualifier,
                target,
                term,
                remaining,
                current: next,
            },
        ));
        None
    }
}

enum ProcessOutcome {
    Continue,
    Await,
    Finished(EvalStep),
}

/// The reverse-DNS name for an address (`in-addr.arpa` / `ip6.arpa`).
pub fn reverse_name(ip: IpAddr) -> Name {
    match ip {
        IpAddr::V4(v4) => {
            let o = v4.octets();
            Name::parse(&format!("{}.{}.{}.{}.in-addr.arpa", o[3], o[2], o[1], o[0]))
                .expect("valid reverse name")
        }
        IpAddr::V6(v6) => {
            let mut labels: Vec<String> = Vec::with_capacity(34);
            for b in v6.octets().iter().rev() {
                labels.push(format!("{:x}", b & 0xf));
                labels.push(format!("{:x}", b >> 4));
            }
            labels.push("ip6".into());
            labels.push("arpa".into());
            Name::from_labels(labels).expect("valid reverse name")
        }
    }
}
