//! Organizational-domain determination (RFC 7489 §3.2).
//!
//! RFC 7489 defines the organizational domain via the public suffix list.
//! Shipping the full Mozilla PSL is out of scope for a measurement
//! reproduction, so this module embeds the multi-label public suffixes
//! that actually occur in the paper's datasets (Table 1 lists the TLD
//! mix: com, net, org, edu, gov, ru, pl, br, de, ua, it, cz, ro, us, uk,
//! ca, jp, au, in, ...) plus the ccTLD second-level registries under
//! them. Every single-label TLD is a public suffix by default, which is
//! the PSL's own fallback rule (the `*` rule).

use mailval_dns::Name;

/// Multi-label public suffixes relevant to the datasets. Single-label
/// TLDs need no listing (the default rule covers them).
const MULTI_LABEL_SUFFIXES: &[&str] = &[
    // United Kingdom
    "co.uk",
    "org.uk",
    "ac.uk",
    "gov.uk",
    "net.uk",
    "sch.uk",
    // Brazil
    "com.br",
    "net.br",
    "org.br",
    "gov.br",
    "edu.br",
    // Japan
    "co.jp",
    "ne.jp",
    "or.jp",
    "ac.jp",
    "go.jp",
    // Australia
    "com.au",
    "net.au",
    "org.au",
    "edu.au",
    "gov.au",
    // Russia / Ukraine
    "com.ru",
    "net.ru",
    "org.ru",
    "com.ua",
    "net.ua",
    "org.ua",
    "in.ua",
    // Poland / Czechia / Romania
    "com.pl",
    "net.pl",
    "org.pl",
    "edu.pl",
    "waw.pl",
    "co.ro",
    "org.ro",
    // Americas
    "com.mx",
    "com.ar",
    "com.co",
    "com.pe",
    "com.ve",
    // Asia
    "co.in",
    "net.in",
    "org.in",
    "com.cn",
    "net.cn",
    "org.cn",
    "com.tw",
    "co.kr",
    "or.kr",
    "com.sg",
    "com.hk",
    "com.my",
    // Europe misc
    "co.at",
    "or.at",
    "com.tr",
    "com.gr",
    "co.hu",
    "com.pt",
    "com.es",
    // Africa / misc
    "co.za",
    "org.za",
    "com.ng",
    "co.il",
    "org.il",
    "com.eg",
    // US locality style
    "k12.ut.us",
    "state.ut.us",
];

/// Is `name` a public suffix?
pub fn is_public_suffix(name: &Name) -> bool {
    match name.label_count() {
        0 => true,
        1 => true, // every TLD
        _ => {
            let s = name.to_string();
            MULTI_LABEL_SUFFIXES.contains(&s.as_str())
        }
    }
}

/// The organizational domain: the public suffix plus one label
/// (RFC 7489 §3.2). A name that is itself a public suffix (or the root)
/// is returned unchanged.
pub fn organizational_domain(name: &Name) -> Name {
    let labels = name.label_count();
    // Walk from the TLD downward: the org domain is suffix(k+1) where
    // suffix(k) is the longest public suffix.
    let mut longest_suffix = 1; // every TLD is a suffix
                                // Check 2- and 3-label suffixes against the table.
    for k in 2..labels {
        if is_public_suffix(&name.suffix(k)) {
            longest_suffix = k;
        }
    }
    if labels <= longest_suffix {
        return name.clone();
    }
    name.suffix(longest_suffix + 1)
}

/// Relaxed alignment (RFC 7489 §3.1): do the two domains share an
/// organizational domain?
pub fn relaxed_aligned(a: &Name, b: &Name) -> bool {
    organizational_domain(a) == organizational_domain(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn simple_tld() {
        assert_eq!(
            organizational_domain(&n("mail.example.com")),
            n("example.com")
        );
        assert_eq!(organizational_domain(&n("example.com")), n("example.com"));
        assert_eq!(
            organizational_domain(&n("a.b.c.d.example.org")),
            n("example.org")
        );
    }

    #[test]
    fn cctld_registries() {
        assert_eq!(
            organizational_domain(&n("mail.example.co.uk")),
            n("example.co.uk")
        );
        assert_eq!(
            organizational_domain(&n("example.co.uk")),
            n("example.co.uk")
        );
        assert_eq!(
            organizational_domain(&n("mx1.corp.com.br")),
            n("corp.com.br")
        );
    }

    #[test]
    fn suffix_itself_unchanged() {
        assert_eq!(organizational_domain(&n("co.uk")), n("co.uk"));
        assert_eq!(organizational_domain(&n("com")), n("com"));
    }

    #[test]
    fn three_label_suffix() {
        assert_eq!(
            organizational_domain(&n("school.district.k12.ut.us")),
            n("district.k12.ut.us")
        );
    }

    #[test]
    fn alignment() {
        assert!(relaxed_aligned(&n("mail.example.com"), &n("example.com")));
        assert!(relaxed_aligned(&n("a.x.test"), &n("b.x.test")));
        assert!(!relaxed_aligned(&n("example.com"), &n("example.net")));
        assert!(!relaxed_aligned(&n("a.co.uk"), &n("b.co.uk")));
    }
}
