//! Resumable DMARC evaluation (RFC 7489 §6.6.2–6.6.3).
//!
//! Policy discovery emits `_dmarc.<from-domain>` TXT, then (when that
//! yields nothing and the From domain is not organizational)
//! `_dmarc.<org-domain>` TXT — the exact queries the paper's apparatus
//! watches to classify an MTA as DMARC-validating. The verdict combines
//! the SPF result (RFC 7208) and DKIM results (RFC 6376) under
//! identifier alignment.

use crate::orgdomain::{organizational_domain, relaxed_aligned};
use crate::record::{looks_like_dmarc, AlignmentMode, DmarcPolicy, DmarcRecord};
use mailval_dns::resolver::ResolveOutcome;
use mailval_dns::rr::RecordType;
use mailval_dns::Name;
use mailval_spf::SpfResult;

/// Inputs from the authentication phase.
#[derive(Debug, Clone)]
pub struct AuthResults {
    /// RFC5322.From header domain — the identifier DMARC protects.
    pub from_domain: Name,
    /// SPF result for the envelope.
    pub spf_result: SpfResult,
    /// The domain SPF authenticated (MAIL FROM domain, or HELO).
    pub spf_domain: Option<Name>,
    /// Each DKIM signature's (d= domain, verified) pair.
    pub dkim: Vec<(Name, bool)>,
}

/// The final DMARC verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DmarcVerdict {
    /// Did DMARC pass?
    pub pass: bool,
    /// Which mechanism satisfied DMARC, if any.
    pub passed_via: Option<PassVia>,
    /// The record found, if any.
    pub record: Option<DmarcRecord>,
    /// What the receiver should do.
    pub disposition: DmarcDisposition,
}

/// Which aligned mechanism produced the pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassVia {
    /// Aligned SPF pass.
    Spf,
    /// Aligned DKIM pass.
    Dkim,
}

/// Receiver disposition (§6.3 `p=` semantics, after `pct=` sampling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmarcDisposition {
    /// No policy published (or evaluation failed): no DMARC handling.
    NoPolicy,
    /// Passed, or policy is none: deliver normally.
    Accept,
    /// Quarantine the message.
    Quarantine,
    /// Reject the message.
    Reject,
}

/// Next step of evaluation.
#[derive(Debug, Clone)]
pub enum DmarcStep {
    /// Resolve this TXT question and resume via
    /// [`DmarcEvaluator::on_answer`].
    NeedLookup {
        /// The `_dmarc.<domain>` name.
        name: Name,
        /// Always TXT.
        rtype: RecordType,
    },
    /// Finished.
    Done(DmarcVerdict),
}

enum Phase {
    FromDomain,
    OrgDomain,
    Finished,
}

/// Resumable DMARC evaluator.
pub struct DmarcEvaluator {
    auth: AuthResults,
    phase: Phase,
    /// Uniform sample in [0,100) used for `pct=` sampling; callers supply
    /// it so the simulator stays deterministic.
    pct_roll: u8,
    /// True when the record was found at the organizational domain
    /// rather than the From domain (subdomain policy applies).
    used_org_domain: bool,
}

impl DmarcEvaluator {
    /// Create an evaluator. `pct_roll` ∈ [0,100) drives `pct=` sampling.
    pub fn new(auth: AuthResults, pct_roll: u8) -> DmarcEvaluator {
        DmarcEvaluator {
            auth,
            phase: Phase::FromDomain,
            pct_roll: pct_roll % 100,
            used_org_domain: false,
        }
    }

    fn dmarc_name(domain: &Name) -> Name {
        Name::parse("_dmarc")
            .unwrap()
            .concat(domain)
            .expect("_dmarc.<domain> fits")
    }

    /// Begin: emits the `_dmarc.<from-domain>` question.
    pub fn start(&mut self) -> DmarcStep {
        DmarcStep::NeedLookup {
            name: Self::dmarc_name(&self.auth.from_domain),
            rtype: RecordType::Txt,
        }
    }

    /// Feed the outcome of the previously requested lookup.
    pub fn on_answer(&mut self, outcome: ResolveOutcome) -> DmarcStep {
        let record = match outcome {
            ResolveOutcome::Records(records) => records
                .iter()
                .filter_map(|r| r.rdata.txt_joined())
                .filter(|txt| looks_like_dmarc(txt))
                .find_map(|txt| DmarcRecord::parse(&txt).ok()),
            // Transient DNS errors: RFC 7489 says try again later; for a
            // single evaluation this means no policy can be applied.
            _ => None,
        };
        match (&self.phase, record) {
            (Phase::FromDomain, Some(record)) => {
                self.phase = Phase::Finished;
                DmarcStep::Done(self.verdict(Some(record)))
            }
            (Phase::FromDomain, None) => {
                let org = organizational_domain(&self.auth.from_domain);
                if org != self.auth.from_domain {
                    self.phase = Phase::OrgDomain;
                    self.used_org_domain = true;
                    DmarcStep::NeedLookup {
                        name: Self::dmarc_name(&org),
                        rtype: RecordType::Txt,
                    }
                } else {
                    self.phase = Phase::Finished;
                    DmarcStep::Done(self.verdict(None))
                }
            }
            (Phase::OrgDomain, record) => {
                self.phase = Phase::Finished;
                DmarcStep::Done(self.verdict(record))
            }
            (Phase::Finished, _) => unreachable!("evaluator already finished"),
        }
    }

    /// Check identifier alignment and compute the verdict.
    fn verdict(&self, record: Option<DmarcRecord>) -> DmarcVerdict {
        let Some(record) = record else {
            return DmarcVerdict {
                pass: false,
                passed_via: None,
                record: None,
                disposition: DmarcDisposition::NoPolicy,
            };
        };

        let aligned = |mode: AlignmentMode, domain: &Name| match mode {
            AlignmentMode::Strict => *domain == self.auth.from_domain,
            AlignmentMode::Relaxed => relaxed_aligned(domain, &self.auth.from_domain),
        };

        let spf_ok = self.auth.spf_result == SpfResult::Pass
            && self
                .auth
                .spf_domain
                .as_ref()
                .is_some_and(|d| aligned(record.aspf, d));

        let dkim_ok = self
            .auth
            .dkim
            .iter()
            .any(|(d, verified)| *verified && aligned(record.adkim, d));

        let pass = spf_ok || dkim_ok;
        let passed_via = if spf_ok {
            Some(PassVia::Spf)
        } else if dkim_ok {
            Some(PassVia::Dkim)
        } else {
            None
        };

        let effective_policy = if self.used_org_domain {
            record.subdomain_policy.unwrap_or(record.policy)
        } else {
            record.policy
        };

        let disposition = if pass {
            DmarcDisposition::Accept
        } else if self.pct_roll >= record.pct {
            // Outside the sampled fraction (§6.6.4): apply the next-
            // weaker disposition.
            match effective_policy {
                DmarcPolicy::Reject => DmarcDisposition::Quarantine,
                _ => DmarcDisposition::Accept,
            }
        } else {
            match effective_policy {
                DmarcPolicy::None => DmarcDisposition::Accept,
                DmarcPolicy::Quarantine => DmarcDisposition::Quarantine,
                DmarcPolicy::Reject => DmarcDisposition::Reject,
            }
        };

        DmarcVerdict {
            pass,
            passed_via,
            record: Some(record),
            disposition,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mailval_dns::rr::RData;
    use mailval_dns::Record;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn txt_answer(name: &str, value: &str) -> ResolveOutcome {
        ResolveOutcome::Records(vec![Record::new(n(name), 300, RData::txt_from_str(value))])
    }

    fn auth(
        from: &str,
        spf: SpfResult,
        spf_dom: Option<&str>,
        dkim: &[(&str, bool)],
    ) -> AuthResults {
        AuthResults {
            from_domain: n(from),
            spf_result: spf,
            spf_domain: spf_dom.map(n),
            dkim: dkim.iter().map(|(d, v)| (n(d), *v)).collect(),
        }
    }

    fn run(auth: AuthResults, answers: &[(&str, Option<&str>)]) -> (DmarcVerdict, Vec<Name>) {
        let mut ev = DmarcEvaluator::new(auth, 0);
        let mut asked = Vec::new();
        let mut step = ev.start();
        loop {
            match step {
                DmarcStep::NeedLookup { name, .. } => {
                    asked.push(name.clone());
                    let answer = answers
                        .iter()
                        .find(|(qname, _)| n(qname) == name)
                        .and_then(|(qname, v)| v.map(|value| txt_answer(qname, value)))
                        .unwrap_or(ResolveOutcome::NxDomain);
                    step = ev.on_answer(answer);
                }
                DmarcStep::Done(v) => return (v, asked),
            }
        }
    }

    #[test]
    fn aligned_spf_pass() {
        let (v, asked) = run(
            auth("example.com", SpfResult::Pass, Some("example.com"), &[]),
            &[("_dmarc.example.com", Some("v=DMARC1; p=reject"))],
        );
        assert!(v.pass);
        assert_eq!(v.passed_via, Some(PassVia::Spf));
        assert_eq!(v.disposition, DmarcDisposition::Accept);
        assert_eq!(asked, vec![n("_dmarc.example.com")]);
    }

    #[test]
    fn aligned_dkim_pass_spf_fail() {
        let (v, _) = run(
            auth(
                "example.com",
                SpfResult::Fail,
                Some("other.test"),
                &[("mail.example.com", true)],
            ),
            &[("_dmarc.example.com", Some("v=DMARC1; p=reject"))],
        );
        assert!(v.pass);
        assert_eq!(v.passed_via, Some(PassVia::Dkim));
    }

    #[test]
    fn both_fail_reject() {
        let (v, _) = run(
            auth(
                "example.com",
                SpfResult::Fail,
                Some("example.com"),
                &[("example.com", false)],
            ),
            &[("_dmarc.example.com", Some("v=DMARC1; p=reject"))],
        );
        assert!(!v.pass);
        assert_eq!(v.disposition, DmarcDisposition::Reject);
    }

    #[test]
    fn unaligned_spf_pass_fails_dmarc() {
        // SPF passed but for an unrelated domain (classic spoofing hole
        // DMARC closes).
        let (v, _) = run(
            auth("victim.com", SpfResult::Pass, Some("attacker.net"), &[]),
            &[("_dmarc.victim.com", Some("v=DMARC1; p=quarantine"))],
        );
        assert!(!v.pass);
        assert_eq!(v.disposition, DmarcDisposition::Quarantine);
    }

    #[test]
    fn strict_vs_relaxed_alignment() {
        // Relaxed: subdomain aligns.
        let (v, _) = run(
            auth(
                "example.com",
                SpfResult::Pass,
                Some("mail.example.com"),
                &[],
            ),
            &[("_dmarc.example.com", Some("v=DMARC1; p=reject"))],
        );
        assert!(v.pass);
        // Strict: subdomain does not align.
        let (v, _) = run(
            auth(
                "example.com",
                SpfResult::Pass,
                Some("mail.example.com"),
                &[],
            ),
            &[("_dmarc.example.com", Some("v=DMARC1; p=reject; aspf=s"))],
        );
        assert!(!v.pass);
    }

    #[test]
    fn org_domain_fallback() {
        let (v, asked) = run(
            auth("sub.mail.example.com", SpfResult::Fail, None, &[]),
            &[(
                "_dmarc.example.com",
                Some("v=DMARC1; p=reject; sp=quarantine"),
            )],
        );
        assert_eq!(
            asked,
            vec![n("_dmarc.sub.mail.example.com"), n("_dmarc.example.com")]
        );
        // Subdomain policy applies.
        assert_eq!(v.disposition, DmarcDisposition::Quarantine);
    }

    #[test]
    fn no_policy_anywhere() {
        let (v, asked) = run(auth("sub.example.com", SpfResult::Fail, None, &[]), &[]);
        assert_eq!(v.disposition, DmarcDisposition::NoPolicy);
        assert_eq!(asked.len(), 2);
    }

    #[test]
    fn org_domain_not_queried_twice() {
        let (_, asked) = run(auth("example.com", SpfResult::Fail, None, &[]), &[]);
        assert_eq!(asked, vec![n("_dmarc.example.com")]);
    }

    #[test]
    fn policy_none_accepts() {
        let (v, _) = run(
            auth("example.com", SpfResult::Fail, None, &[]),
            &[("_dmarc.example.com", Some("v=DMARC1; p=none"))],
        );
        assert!(!v.pass);
        assert_eq!(v.disposition, DmarcDisposition::Accept);
    }

    #[test]
    fn pct_sampling() {
        let auth_fail = || auth("example.com", SpfResult::Fail, None, &[]);
        // Roll 40 with pct=30 → outside sample → reject downgrades to
        // quarantine.
        let mut ev = DmarcEvaluator::new(auth_fail(), 40);
        let _ = ev.start();
        let DmarcStep::Done(v) = ev.on_answer(txt_answer(
            "_dmarc.example.com",
            "v=DMARC1; p=reject; pct=30",
        )) else {
            panic!()
        };
        assert_eq!(v.disposition, DmarcDisposition::Quarantine);
        // Roll 10 with pct=30 → inside sample → full reject.
        let mut ev = DmarcEvaluator::new(auth_fail(), 10);
        let _ = ev.start();
        let DmarcStep::Done(v) = ev.on_answer(txt_answer(
            "_dmarc.example.com",
            "v=DMARC1; p=reject; pct=30",
        )) else {
            panic!()
        };
        assert_eq!(v.disposition, DmarcDisposition::Reject);
    }

    #[test]
    fn malformed_record_treated_as_absent() {
        let (v, asked) = run(
            auth("sub.example.com", SpfResult::Fail, None, &[]),
            &[("_dmarc.sub.example.com", Some("v=DMARC1; p=bogus"))],
        );
        assert_eq!(asked.len(), 2, "fell back to org domain");
        assert_eq!(v.disposition, DmarcDisposition::NoPolicy);
    }
}
