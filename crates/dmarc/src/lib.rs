//! # mailval-dmarc
//!
//! Domain-based Message Authentication, Reporting and Conformance
//! (RFC 7489), from scratch:
//!
//! * [`record`] — the `v=DMARC1` policy record grammar (§6.3).
//! * [`orgdomain`] — organizational-domain determination via an embedded
//!   public-suffix subset (§3.2).
//! * [`eval`] — resumable policy discovery + verdict: yields the
//!   `_dmarc.<domain>` TXT questions (the DNS observable the paper's
//!   apparatus uses to classify an MTA as DMARC-validating), checks
//!   SPF/DKIM identifier alignment (§3.1), and produces a disposition.
//! * [`report`] — aggregate-report row structures (§7.2), the
//!   `rua=` feedback channel the paper used as one of its contact
//!   channels (§5.3).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod eval;
pub mod orgdomain;
pub mod record;
pub mod report;

pub use eval::{DmarcDisposition, DmarcEvaluator, DmarcStep, DmarcVerdict};
pub use orgdomain::organizational_domain;
pub use record::{AlignmentMode, DmarcPolicy, DmarcRecord};
