//! DMARC policy records (RFC 7489 §6.3), published as TXT at
//! `_dmarc.<domain>`.

use std::fmt;

/// Requested handling for failing mail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DmarcPolicy {
    /// Monitor only.
    None,
    /// Treat with suspicion (e.g. spam-folder).
    Quarantine,
    /// Reject at SMTP time.
    Reject,
}

impl fmt::Display for DmarcPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DmarcPolicy::None => write!(f, "none"),
            DmarcPolicy::Quarantine => write!(f, "quarantine"),
            DmarcPolicy::Reject => write!(f, "reject"),
        }
    }
}

/// Identifier alignment mode (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlignmentMode {
    /// Relaxed: organizational domains must match.
    Relaxed,
    /// Strict: FQDNs must match exactly.
    Strict,
}

/// A parsed DMARC record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DmarcRecord {
    /// `p=`: policy for the domain.
    pub policy: DmarcPolicy,
    /// `sp=`: policy for subdomains (defaults to `p=`).
    pub subdomain_policy: Option<DmarcPolicy>,
    /// `adkim=`: DKIM alignment mode (default relaxed).
    pub adkim: AlignmentMode,
    /// `aspf=`: SPF alignment mode (default relaxed).
    pub aspf: AlignmentMode,
    /// `pct=`: sampling percentage (default 100).
    pub pct: u8,
    /// `rua=`: aggregate report URIs.
    pub rua: Vec<String>,
    /// `ruf=`: failure report URIs.
    pub ruf: Vec<String>,
}

/// Record parse errors. A malformed record is treated as absent (§6.6.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DmarcParseError {
    /// Missing/incorrect `v=DMARC1` (must be the first tag).
    NotDmarc,
    /// Missing required `p=` tag.
    MissingPolicy,
    /// Unknown policy value.
    BadPolicy,
    /// Bad pct value.
    BadPct,
}

impl fmt::Display for DmarcParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self {
            DmarcParseError::NotDmarc => "not a DMARC record",
            DmarcParseError::MissingPolicy => "missing p= tag",
            DmarcParseError::BadPolicy => "bad policy value",
            DmarcParseError::BadPct => "bad pct value",
        };
        write!(f, "{what}")
    }
}

impl std::error::Error for DmarcParseError {}

fn parse_policy(v: &str) -> Result<DmarcPolicy, DmarcParseError> {
    match v.trim().to_ascii_lowercase().as_str() {
        "none" => Ok(DmarcPolicy::None),
        "quarantine" => Ok(DmarcPolicy::Quarantine),
        "reject" => Ok(DmarcPolicy::Reject),
        _ => Err(DmarcParseError::BadPolicy),
    }
}

/// Quick check whether a TXT string is a DMARC record. Byte-indexed
/// (`t.len() >= 8` counts bytes), so the slice must be too: hostile
/// TXT rdata can put a multibyte char across the 8-byte boundary.
pub fn looks_like_dmarc(txt: &str) -> bool {
    let t = txt.trim_start();
    t.as_bytes()
        .get(..8)
        .is_some_and(|p| p.eq_ignore_ascii_case(b"v=DMARC1"))
}

impl DmarcRecord {
    /// Parse a DMARC record TXT string.
    pub fn parse(txt: &str) -> Result<DmarcRecord, DmarcParseError> {
        let mut tags: Vec<(String, String)> = Vec::new();
        for entry in txt.split(';') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let Some(eq) = entry.find('=') else {
                continue; // lenient: skip junk entries (§6.6.3 tolerance)
            };
            tags.push((
                entry[..eq].trim().to_ascii_lowercase(),
                entry[eq + 1..].trim().to_string(),
            ));
        }
        // v must be present, first, and DMARC1.
        match tags.first() {
            Some((name, value)) if name == "v" && value.eq_ignore_ascii_case("DMARC1") => {}
            _ => return Err(DmarcParseError::NotDmarc),
        }
        let get = |name: &str| {
            tags.iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.as_str())
        };
        let policy = parse_policy(get("p").ok_or(DmarcParseError::MissingPolicy)?)?;
        let subdomain_policy = match get("sp") {
            Some(v) => Some(parse_policy(v)?),
            None => None,
        };
        let mode = |v: Option<&str>| match v.map(|s| s.trim().to_ascii_lowercase()) {
            Some(s) if s == "s" => AlignmentMode::Strict,
            _ => AlignmentMode::Relaxed,
        };
        let pct = match get("pct") {
            Some(v) => {
                let n: u8 = v.trim().parse().map_err(|_| DmarcParseError::BadPct)?;
                if n > 100 {
                    return Err(DmarcParseError::BadPct);
                }
                n
            }
            None => 100,
        };
        let uris = |v: Option<&str>| -> Vec<String> {
            v.map(|s| {
                s.split(',')
                    .map(|u| u.trim().to_string())
                    .filter(|u| !u.is_empty())
                    .collect()
            })
            .unwrap_or_default()
        };
        Ok(DmarcRecord {
            policy,
            subdomain_policy,
            adkim: mode(get("adkim")),
            aspf: mode(get("aspf")),
            pct,
            rua: uris(get("rua")),
            ruf: uris(get("ruf")),
        })
    }

    /// Serialize back to record text.
    pub fn to_record_text(&self) -> String {
        let mut parts = vec!["v=DMARC1".to_string(), format!("p={}", self.policy)];
        if let Some(sp) = self.subdomain_policy {
            parts.push(format!("sp={sp}"));
        }
        if self.adkim == AlignmentMode::Strict {
            parts.push("adkim=s".into());
        }
        if self.aspf == AlignmentMode::Strict {
            parts.push("aspf=s".into());
        }
        if self.pct != 100 {
            parts.push(format!("pct={}", self.pct));
        }
        if !self.rua.is_empty() {
            parts.push(format!("rua={}", self.rua.join(",")));
        }
        if !self.ruf.is_empty() {
            parts.push(format!("ruf={}", self.ruf.join(",")));
        }
        parts.join("; ")
    }

    /// A strict reject policy with an aggregate-report address — the
    /// configuration the paper published for every From domain (§4.3,
    /// §5.3).
    pub fn strict_reject(rua_mailto: &str) -> DmarcRecord {
        DmarcRecord {
            policy: DmarcPolicy::Reject,
            subdomain_policy: None,
            adkim: AlignmentMode::Relaxed,
            aspf: AlignmentMode::Relaxed,
            pct: 100,
            rua: vec![format!("mailto:{rua_mailto}")],
            ruf: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let r = DmarcRecord::parse("v=DMARC1; p=reject; rua=mailto:agg@dns-lab.org").unwrap();
        assert_eq!(r.policy, DmarcPolicy::Reject);
        assert_eq!(r.pct, 100);
        assert_eq!(r.adkim, AlignmentMode::Relaxed);
        assert_eq!(r.rua, vec!["mailto:agg@dns-lab.org"]);
    }

    #[test]
    fn parse_full() {
        let r = DmarcRecord::parse(
            "v=DMARC1; p=quarantine; sp=none; adkim=s; aspf=s; pct=30; \
             rua=mailto:a@x.test,mailto:b@x.test; ruf=mailto:f@x.test",
        )
        .unwrap();
        assert_eq!(r.policy, DmarcPolicy::Quarantine);
        assert_eq!(r.subdomain_policy, Some(DmarcPolicy::None));
        assert_eq!(r.adkim, AlignmentMode::Strict);
        assert_eq!(r.aspf, AlignmentMode::Strict);
        assert_eq!(r.pct, 30);
        assert_eq!(r.rua.len(), 2);
        assert_eq!(r.ruf.len(), 1);
    }

    #[test]
    fn v_must_be_first() {
        assert_eq!(
            DmarcRecord::parse("p=reject; v=DMARC1"),
            Err(DmarcParseError::NotDmarc)
        );
        assert_eq!(
            DmarcRecord::parse("v=spf1 -all"),
            Err(DmarcParseError::NotDmarc)
        );
    }

    #[test]
    fn required_policy() {
        assert_eq!(
            DmarcRecord::parse("v=DMARC1; rua=mailto:x@y.test"),
            Err(DmarcParseError::MissingPolicy)
        );
        assert_eq!(
            DmarcRecord::parse("v=DMARC1; p=destroy"),
            Err(DmarcParseError::BadPolicy)
        );
    }

    #[test]
    fn pct_bounds() {
        assert_eq!(
            DmarcRecord::parse("v=DMARC1; p=none; pct=101"),
            Err(DmarcParseError::BadPct)
        );
        let r = DmarcRecord::parse("v=DMARC1; p=none; pct=0").unwrap();
        assert_eq!(r.pct, 0);
    }

    #[test]
    fn roundtrip() {
        let r = DmarcRecord::strict_reject("agg@dns-lab.org");
        let text = r.to_record_text();
        assert_eq!(text, "v=DMARC1; p=reject; rua=mailto:agg@dns-lab.org");
        assert_eq!(DmarcRecord::parse(&text).unwrap(), r);
    }

    #[test]
    fn detection() {
        assert!(looks_like_dmarc("v=DMARC1; p=none"));
        assert!(!looks_like_dmarc("v=spf1 -all"));
    }

    #[test]
    fn detection_survives_multibyte_garbage() {
        // Hostile TXT rdata arrives lossy-decoded, so U+FFFD (3 bytes)
        // can straddle the 8-byte prefix; this used to panic on a char
        // boundary. The short-but-multibyte case must not panic either.
        assert!(!looks_like_dmarc("v=DMAR\u{fffd}H; p=reject"));
        assert!(!looks_like_dmarc("\u{fffd}\u{fffd}\u{fffd}"));
        assert!(looks_like_dmarc("v=DMARC1\u{fffd}garbage"));
    }
}
