//! DMARC aggregate-report structures (RFC 7489 §7.2).
//!
//! The paper published an `rua=` address on every From domain (§5.3) as
//! one of its contact/attribution channels; receivers that send
//! aggregate reports would address rows like these to it.

use crate::eval::DmarcDisposition;
use mailval_dns::Name;
use mailval_spf::SpfResult;
use std::net::IpAddr;

/// One row of an aggregate report: a (source IP, disposition, results)
/// tuple with a message count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportRow {
    /// Sending IP observed.
    pub source_ip: IpAddr,
    /// Messages aggregated into this row.
    pub count: u64,
    /// Disposition applied.
    pub disposition: DmarcDisposition,
    /// Raw SPF result.
    pub spf: SpfResult,
    /// DKIM pass/fail (any aligned signature).
    pub dkim_pass: bool,
    /// RFC5322.From domain.
    pub header_from: Name,
}

/// An aggregate report for one (reporting org, policy domain, window).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggregateReport {
    /// Reporting organization name.
    pub org_name: String,
    /// The domain the policy belongs to.
    pub policy_domain: Name,
    /// Report window start (unix seconds).
    pub begin: u64,
    /// Report window end (unix seconds).
    pub end: u64,
    /// Rows.
    pub rows: Vec<ReportRow>,
}

impl AggregateReport {
    /// Total messages covered.
    pub fn total_messages(&self) -> u64 {
        self.rows.iter().map(|r| r.count).sum()
    }

    /// Render a compact single-line-per-row text form (not the XML of
    /// RFC 7489 Appendix C; the reproduction only needs the content).
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "report org={} domain={} window={}..{}\n",
            self.org_name, self.policy_domain, self.begin, self.end
        );
        for row in &self.rows {
            out.push_str(&format!(
                "  ip={} count={} disposition={:?} spf={} dkim={}\n",
                row.source_ip,
                row.count,
                row.disposition,
                row.spf,
                if row.dkim_pass { "pass" } else { "fail" }
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_text() {
        let report = AggregateReport {
            org_name: "recv.test".into(),
            policy_domain: Name::parse("d1.dns-lab.org").unwrap(),
            begin: 1,
            end: 86400,
            rows: vec![
                ReportRow {
                    source_ip: "192.0.2.1".parse().unwrap(),
                    count: 3,
                    disposition: DmarcDisposition::Accept,
                    spf: SpfResult::Pass,
                    dkim_pass: true,
                    header_from: Name::parse("d1.dns-lab.org").unwrap(),
                },
                ReportRow {
                    source_ip: "198.51.100.9".parse().unwrap(),
                    count: 2,
                    disposition: DmarcDisposition::Reject,
                    spf: SpfResult::Fail,
                    dkim_pass: false,
                    header_from: Name::parse("d1.dns-lab.org").unwrap(),
                },
            ],
        };
        assert_eq!(report.total_messages(), 5);
        let text = report.to_text();
        assert!(text.contains("ip=192.0.2.1 count=3"));
        assert!(text.contains("disposition=Reject"));
    }
}
