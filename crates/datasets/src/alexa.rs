//! Alexa-rank tagging (Table 7 of the paper).
//!
//! The paper cross-references NotifyEmail domains with the Alexa Top
//! list of 2020-10-12: 2,953 domains were in the top 1M and 87 in the
//! top 1K. The list itself is unavailable (retired), so ranks are
//! assigned synthetically at those published rates. Popular domains get
//! higher validation-profile quality downstream (Table 7's observed
//! gradient), which the MTA-population model conditions on.

use mailval_simnet::SimRng;

/// Counts from Table 7.
pub const NOTIFY_EMAIL_IN_TOP_1M: usize = 2_953;
/// Count of NotifyEmail domains in the Alexa top 1K.
pub const NOTIFY_EMAIL_IN_TOP_1K: usize = 87;
/// NotifyEmail dataset size the counts are relative to.
pub const NOTIFY_EMAIL_TOTAL: usize = 26_695;

/// Alexa membership of a domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlexaTier {
    /// In the top 1,000.
    Top1K,
    /// In the top 1,000,000 (but not top 1K).
    Top1M,
    /// Not listed.
    Unlisted,
}

/// Assign Alexa tiers to `n` domains at the paper's rates. Returns a
/// vector of tiers aligned with domain indices.
pub fn assign_tiers(n: usize, rng: &mut SimRng) -> Vec<AlexaTier> {
    let p_1k = NOTIFY_EMAIL_IN_TOP_1K as f64 / NOTIFY_EMAIL_TOTAL as f64;
    let p_1m_only =
        (NOTIFY_EMAIL_IN_TOP_1M - NOTIFY_EMAIL_IN_TOP_1K) as f64 / NOTIFY_EMAIL_TOTAL as f64;
    (0..n)
        .map(|_| {
            let roll = rng.next_f64();
            if roll < p_1k {
                AlexaTier::Top1K
            } else if roll < p_1k + p_1m_only {
                AlexaTier::Top1M
            } else {
                AlexaTier::Unlisted
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_match_table7() {
        let mut rng = SimRng::new(9);
        let tiers = assign_tiers(NOTIFY_EMAIL_TOTAL, &mut rng);
        let top1k = tiers.iter().filter(|t| **t == AlexaTier::Top1K).count();
        let top1m = tiers
            .iter()
            .filter(|t| matches!(t, AlexaTier::Top1K | AlexaTier::Top1M))
            .count();
        // Within sampling noise of the published counts.
        assert!((60..=120).contains(&top1k), "top1k={top1k}");
        assert!((2650..=3250).contains(&top1m), "top1m={top1m}");
    }
}
