//! The popular mail providers of Table 6 (19 of the 22 providers from
//! Foster et al. that appear in the paper's NotifyEmail data), with the
//! validation status the paper observed for each.

/// One provider row of Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProviderRow {
    /// Provider mail domain.
    pub domain: &'static str,
    /// SPF-validating per the paper's observation.
    pub spf: bool,
    /// DKIM-validating.
    pub dkim: bool,
    /// DMARC-validating.
    pub dmarc: bool,
}

/// Table 6 of the paper, verbatim.
pub const PROVIDERS: &[ProviderRow] = &[
    ProviderRow {
        domain: "hotmail.com",
        spf: true,
        dkim: true,
        dmarc: true,
    },
    ProviderRow {
        domain: "gmail.com",
        spf: true,
        dkim: true,
        dmarc: true,
    },
    ProviderRow {
        domain: "yahoo.com",
        spf: true,
        dkim: true,
        dmarc: true,
    },
    ProviderRow {
        domain: "aol.com",
        spf: true,
        dkim: true,
        dmarc: true,
    },
    ProviderRow {
        domain: "gmx.de",
        spf: true,
        dkim: true,
        dmarc: false,
    },
    ProviderRow {
        domain: "mail.ru",
        spf: true,
        dkim: true,
        dmarc: true,
    },
    ProviderRow {
        domain: "yahoo.co.in",
        spf: true,
        dkim: true,
        dmarc: true,
    },
    ProviderRow {
        domain: "comcast.net",
        spf: true,
        dkim: true,
        dmarc: true,
    },
    ProviderRow {
        domain: "web.de",
        spf: true,
        dkim: true,
        dmarc: false,
    },
    ProviderRow {
        domain: "qq.com",
        spf: false,
        dkim: false,
        dmarc: false,
    },
    ProviderRow {
        domain: "yahoo.co.jp",
        spf: true,
        dkim: true,
        dmarc: true,
    },
    ProviderRow {
        domain: "naver.com",
        spf: true,
        dkim: true,
        dmarc: true,
    },
    ProviderRow {
        domain: "163.com",
        spf: false,
        dkim: false,
        dmarc: false,
    },
    ProviderRow {
        domain: "libero.it",
        spf: true,
        dkim: true,
        dmarc: true,
    },
    ProviderRow {
        domain: "yandex.ru",
        spf: true,
        dkim: true,
        dmarc: true,
    },
    ProviderRow {
        domain: "daum.net",
        spf: true,
        dkim: true,
        dmarc: false,
    },
    ProviderRow {
        domain: "cox.net",
        spf: true,
        dkim: true,
        dmarc: true,
    },
    ProviderRow {
        domain: "att.net",
        spf: false,
        dkim: false,
        dmarc: false,
    },
    ProviderRow {
        domain: "wp.pl",
        spf: true,
        dkim: true,
        dmarc: true,
    },
];

/// Aggregate checks the paper reports about Table 6.
pub fn spf_validating_count() -> usize {
    PROVIDERS.iter().filter(|p| p.spf).count()
}

/// Providers validating all three mechanisms.
pub fn full_validation_count() -> usize {
    PROVIDERS
        .iter()
        .filter(|p| p.spf && p.dkim && p.dmarc)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_aggregates() {
        assert_eq!(PROVIDERS.len(), 19);
        // §6.1: "16 of 19 (84%) performed a DNS lookup for an SPF policy".
        assert_eq!(spf_validating_count(), 16);
        // §6.1: "13 of 19 (68%) performed SPF, DKIM, and DMARC".
        assert_eq!(full_validation_count(), 13);
    }

    #[test]
    fn non_validators_are_the_three_named() {
        let non: Vec<&str> = PROVIDERS
            .iter()
            .filter(|p| !p.spf)
            .map(|p| p.domain)
            .collect();
        assert_eq!(non, vec!["qq.com", "163.com", "att.net"]);
    }
}
