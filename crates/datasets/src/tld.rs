//! TLD marginals (Table 1 of the paper) and a sampler reproducing them.

use mailval_simnet::SimRng;

/// One TLD with its share of a dataset's domains.
#[derive(Debug, Clone, Copy)]
pub struct TldShare {
    /// The TLD label.
    pub tld: &'static str,
    /// Fraction of domains (0..1).
    pub share: f64,
}

/// Table 1, NotifyEmail column: top-10 TLDs and total TLD count 259.
pub const NOTIFY_EMAIL_TOP_TLDS: &[TldShare] = &[
    TldShare {
        tld: "com",
        share: 0.26,
    },
    TldShare {
        tld: "net",
        share: 0.13,
    },
    TldShare {
        tld: "ru",
        share: 0.083,
    },
    TldShare {
        tld: "pl",
        share: 0.050,
    },
    TldShare {
        tld: "br",
        share: 0.045,
    },
    TldShare {
        tld: "de",
        share: 0.040,
    },
    TldShare {
        tld: "ua",
        share: 0.025,
    },
    TldShare {
        tld: "it",
        share: 0.019,
    },
    TldShare {
        tld: "cz",
        share: 0.016,
    },
    TldShare {
        tld: "ro",
        share: 0.016,
    },
];

/// Total TLDs in the NotifyEmail dataset.
pub const NOTIFY_EMAIL_TLD_COUNT: usize = 259;

/// Table 1, TwoWeekMX column: top-10 TLDs and total TLD count 218.
pub const TWO_WEEK_MX_TOP_TLDS: &[TldShare] = &[
    TldShare {
        tld: "com",
        share: 0.49,
    },
    TldShare {
        tld: "org",
        share: 0.17,
    },
    TldShare {
        tld: "edu",
        share: 0.090,
    },
    TldShare {
        tld: "net",
        share: 0.063,
    },
    TldShare {
        tld: "us",
        share: 0.036,
    },
    TldShare {
        tld: "gov",
        share: 0.011,
    },
    TldShare {
        tld: "uk",
        share: 0.011,
    },
    TldShare {
        tld: "cam",
        share: 0.010,
    },
    TldShare {
        tld: "ca",
        share: 0.0076,
    },
    TldShare {
        tld: "de",
        share: 0.0066,
    },
];

/// Total TLDs in the TwoWeekMX dataset.
pub const TWO_WEEK_MX_TLD_COUNT: usize = 218;

/// Long-tail TLD labels used to fill out the remaining mass (drawn from
/// real ccTLD/newTLD space so synthetic names look plausible).
const TAIL_TLDS: &[&str] = &[
    "fr", "nl", "es", "jp", "cn", "in", "au", "se", "no", "fi", "dk", "ch", "at", "be", "pt", "gr",
    "hu", "sk", "si", "hr", "rs", "bg", "lt", "lv", "ee", "tr", "il", "za", "mx", "ar", "cl", "co",
    "pe", "ve", "kr", "tw", "hk", "sg", "my", "th", "vn", "id", "ph", "nz", "ie", "is", "lu", "mt",
    "cy", "md", "by", "kz", "ge", "am", "az", "uz", "mn", "np", "lk", "bd", "pk", "ir", "iq", "sa",
    "ae", "qa", "kw", "om", "jo", "lb", "eg", "ma", "tn", "dz", "ly", "ng", "ke", "gh", "tz", "ug",
    "zm", "zw", "mz", "ao", "cm", "ci", "sn", "et", "info", "biz", "org", "edu", "gov", "us", "uk",
    "ca", "eu", "io", "co", "me", "tv", "cc", "ws", "xyz", "online", "site", "club", "top", "shop",
    "app", "dev", "cloud", "email", "network",
];

/// A TLD sampler matching a Table 1 column: the top-10 get their exact
/// published shares; the remainder is spread over `total_tlds - 10`
/// synthetic tail TLDs with geometrically decaying weights (heavy-tail
/// like real TLD distributions).
#[derive(Debug, Clone)]
pub struct TldSampler {
    tlds: Vec<String>,
    weights: Vec<f64>,
}

impl TldSampler {
    /// Build from a top-10 table and its dataset's total TLD count.
    pub fn new(top: &[TldShare], total_tlds: usize) -> TldSampler {
        let mut tlds: Vec<String> = top.iter().map(|t| t.tld.to_string()).collect();
        let mut weights: Vec<f64> = top.iter().map(|t| t.share).collect();
        let top_mass: f64 = weights.iter().sum();
        let tail_count = total_tlds.saturating_sub(top.len()).max(1);
        let tail_mass = (1.0 - top_mass).max(0.0);
        // Geometric decay over the tail; normalize to tail_mass.
        let ratio: f64 = 0.97;
        let mut tail_weights: Vec<f64> = (0..tail_count).map(|i| ratio.powi(i as i32)).collect();
        let tail_total: f64 = tail_weights.iter().sum();
        for w in &mut tail_weights {
            *w *= tail_mass / tail_total;
        }
        for (i, &w) in tail_weights.iter().enumerate() {
            // Cycle through real tail labels; extend with numbered
            // variants when the list runs out.
            let label = if let Some(&t) = TAIL_TLDS.get(i) {
                // Avoid duplicating a top-10 label.
                if tlds.iter().any(|existing| existing == t) {
                    format!("{t}{}", i)
                } else {
                    t.to_string()
                }
            } else {
                format!("tld{i}")
            };
            tlds.push(label);
            weights.push(w);
        }
        TldSampler { tlds, weights }
    }

    /// Sample a TLD.
    pub fn sample(&self, rng: &mut SimRng) -> &str {
        let idx = rng.weighted_choice(&self.weights);
        &self.tlds[idx]
    }

    /// Number of distinct TLDs this sampler can produce.
    pub fn tld_count(&self) -> usize {
        self.tlds.len()
    }
}

/// Compute the empirical top-`k` TLD shares of a list of TLD strings.
pub fn empirical_top_tlds(tlds: &[String], k: usize) -> Vec<(String, f64)> {
    use std::collections::HashMap;
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for t in tlds {
        *counts.entry(t.as_str()).or_default() += 1;
    }
    let mut pairs: Vec<(String, f64)> = counts
        .into_iter()
        .map(|(t, c)| (t.to_string(), c as f64 / tlds.len() as f64))
        .collect();
    pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    pairs.truncate(k);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_reproduced() {
        let sampler = TldSampler::new(NOTIFY_EMAIL_TOP_TLDS, NOTIFY_EMAIL_TLD_COUNT);
        let mut rng = SimRng::new(1);
        let samples: Vec<String> = (0..50_000)
            .map(|_| sampler.sample(&mut rng).to_string())
            .collect();
        let top = empirical_top_tlds(&samples, 3);
        assert_eq!(top[0].0, "com");
        assert!((top[0].1 - 0.26).abs() < 0.02, "com share {}", top[0].1);
        assert_eq!(top[1].0, "net");
        assert!((top[1].1 - 0.13).abs() < 0.02);
    }

    #[test]
    fn tld_count_matches_table() {
        let sampler = TldSampler::new(NOTIFY_EMAIL_TOP_TLDS, NOTIFY_EMAIL_TLD_COUNT);
        assert_eq!(sampler.tld_count(), NOTIFY_EMAIL_TLD_COUNT);
        let sampler = TldSampler::new(TWO_WEEK_MX_TOP_TLDS, TWO_WEEK_MX_TLD_COUNT);
        assert_eq!(sampler.tld_count(), TWO_WEEK_MX_TLD_COUNT);
    }

    #[test]
    fn no_duplicate_tlds() {
        let sampler = TldSampler::new(TWO_WEEK_MX_TOP_TLDS, TWO_WEEK_MX_TLD_COUNT);
        let mut seen = std::collections::HashSet::new();
        for t in &sampler.tlds {
            assert!(seen.insert(t.clone()), "duplicate tld {t}");
        }
    }

    #[test]
    fn table_shares_sum_below_one() {
        for table in [NOTIFY_EMAIL_TOP_TLDS, TWO_WEEK_MX_TOP_TLDS] {
            let sum: f64 = table.iter().map(|t| t.share).sum();
            assert!(sum < 1.0, "top-10 mass {sum}");
        }
    }
}
