//! AS marginals (Table 3 of the paper) and provider pools.
//!
//! The paper counts an AS once per domain whose MTA addresses fall in a
//! prefix announced by that AS; Table 3 gives the top-10 shares. The
//! big named ASes are mail *providers* (Google, Microsoft, Proofpoint,
//! Mimecast, ...) hosting many domains on shared MTA pools — which is
//! exactly why the datasets have far fewer MTAs than domains.

use mailval_simnet::SimRng;

/// One AS and its share of a dataset's domains.
#[derive(Debug, Clone, Copy)]
pub struct AsShare {
    /// AS number.
    pub asn: u32,
    /// Organization name.
    pub name: &'static str,
    /// Fraction of domains.
    pub share: f64,
    /// Is this a shared mail-provider AS (domains share MTA pools)?
    pub shared_provider: bool,
}

/// Table 3, NotifyEmail column (10,937 total ASes).
pub const NOTIFY_EMAIL_TOP_ASES: &[AsShare] = &[
    AsShare {
        asn: 16509,
        name: "Amazon",
        share: 0.023,
        shared_provider: true,
    },
    AsShare {
        asn: 26211,
        name: "Proofpoint",
        share: 0.017,
        shared_provider: true,
    },
    AsShare {
        asn: 22843,
        name: "Proofpoint",
        share: 0.016,
        shared_provider: true,
    },
    AsShare {
        asn: 46606,
        name: "Unified Layer",
        share: 0.013,
        shared_provider: true,
    },
    AsShare {
        asn: 16276,
        name: "OVH",
        share: 0.0095,
        shared_provider: false,
    },
    AsShare {
        asn: 24940,
        name: "Hetzner",
        share: 0.0092,
        shared_provider: false,
    },
    AsShare {
        asn: 16417,
        name: "IronPort",
        share: 0.0091,
        shared_provider: true,
    },
    AsShare {
        asn: 14618,
        name: "Amazon",
        share: 0.0088,
        shared_provider: true,
    },
    AsShare {
        asn: 12824,
        name: "home.pl",
        share: 0.0054,
        shared_provider: true,
    },
    AsShare {
        asn: 52129,
        name: "Proofpoint",
        share: 0.0043,
        shared_provider: true,
    },
];

/// Total ASes in the NotifyEmail dataset.
pub const NOTIFY_EMAIL_AS_COUNT: usize = 10_937;

/// Table 3, TwoWeekMX column (1,795 total ASes).
pub const TWO_WEEK_MX_TOP_ASES: &[AsShare] = &[
    AsShare {
        asn: 15169,
        name: "Google",
        share: 0.32,
        shared_provider: true,
    },
    AsShare {
        asn: 8075,
        name: "Microsoft",
        share: 0.20,
        shared_provider: true,
    },
    AsShare {
        asn: 16509,
        name: "Amazon",
        share: 0.043,
        shared_provider: true,
    },
    AsShare {
        asn: 22843,
        name: "Proofpoint",
        share: 0.041,
        shared_provider: true,
    },
    AsShare {
        asn: 26211,
        name: "Proofpoint",
        share: 0.032,
        shared_provider: true,
    },
    AsShare {
        asn: 30031,
        name: "Mimecast",
        share: 0.023,
        shared_provider: true,
    },
    AsShare {
        asn: 14618,
        name: "Amazon",
        share: 0.017,
        shared_provider: true,
    },
    AsShare {
        asn: 26496,
        name: "GoDaddy",
        share: 0.016,
        shared_provider: true,
    },
    AsShare {
        asn: 46606,
        name: "Unified Layer",
        share: 0.013,
        shared_provider: true,
    },
    AsShare {
        asn: 16417,
        name: "IronPort",
        share: 0.012,
        shared_provider: true,
    },
];

/// Total ASes in the TwoWeekMX dataset.
pub const TWO_WEEK_MX_AS_COUNT: usize = 1_795;

/// An AS assignment sampler: top ASes at their published shares, the
/// remaining mass over a long tail of synthetic ASes each hosting a
/// handful of (self-hosted) domains.
#[derive(Debug, Clone)]
pub struct AsSampler {
    entries: Vec<(u32, String, bool)>,
    weights: Vec<f64>,
}

impl AsSampler {
    /// Build from a Table 3 column.
    pub fn new(top: &[AsShare], total_ases: usize) -> AsSampler {
        let mut entries: Vec<(u32, String, bool)> = top
            .iter()
            .map(|a| (a.asn, a.name.to_string(), a.shared_provider))
            .collect();
        let mut weights: Vec<f64> = top.iter().map(|a| a.share).collect();
        let top_mass: f64 = weights.iter().sum();
        let tail_count = total_ases.saturating_sub(top.len()).max(1);
        let tail_mass = (1.0 - top_mass).max(0.0);
        // Tail ASes are mostly self-hosting orgs: geometric decay.
        let ratio: f64 = 1.0 - 3.0 / tail_count as f64;
        let mut tail_weights: Vec<f64> = (0..tail_count).map(|i| ratio.powi(i as i32)).collect();
        let tail_total: f64 = tail_weights.iter().sum();
        for w in &mut tail_weights {
            *w *= tail_mass / tail_total;
        }
        for (i, &w) in tail_weights.iter().enumerate() {
            entries.push((64512 + i as u32, format!("AS-tail-{i}"), false));
            weights.push(w);
        }
        AsSampler { entries, weights }
    }

    /// Sample (asn, name, shared_provider).
    pub fn sample(&self, rng: &mut SimRng) -> (u32, &str, bool) {
        let idx = rng.weighted_choice(&self.weights);
        let (asn, name, shared) = &self.entries[idx];
        (*asn, name.as_str(), *shared)
    }

    /// Number of distinct ASes.
    pub fn as_count(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twoweek_shares_reproduced() {
        let sampler = AsSampler::new(TWO_WEEK_MX_TOP_ASES, TWO_WEEK_MX_AS_COUNT);
        let mut rng = SimRng::new(5);
        let mut google = 0usize;
        let mut microsoft = 0usize;
        let n = 20_000;
        for _ in 0..n {
            let (asn, _, _) = sampler.sample(&mut rng);
            if asn == 15169 {
                google += 1;
            }
            if asn == 8075 {
                microsoft += 1;
            }
        }
        let g = google as f64 / n as f64;
        let m = microsoft as f64 / n as f64;
        assert!((g - 0.32).abs() < 0.02, "google {g}");
        assert!((m - 0.20).abs() < 0.02, "microsoft {m}");
    }

    #[test]
    fn as_counts_match_table() {
        assert_eq!(
            AsSampler::new(NOTIFY_EMAIL_TOP_ASES, NOTIFY_EMAIL_AS_COUNT).as_count(),
            NOTIFY_EMAIL_AS_COUNT
        );
        assert_eq!(
            AsSampler::new(TWO_WEEK_MX_TOP_ASES, TWO_WEEK_MX_AS_COUNT).as_count(),
            TWO_WEEK_MX_AS_COUNT
        );
    }
}
