//! # mailval-datasets
//!
//! Synthetic reconstructions of the paper's three datasets (§4.1, §4.2):
//!
//! * **NotifyEmail** — 26,695 domains that received the October 2020
//!   vulnerability-notification mass email (legitimate, expected-to-pass
//!   deliveries).
//! * **NotifyMX** — the same domains nine months later, with *every*
//!   MX-designated MTA resolved (26,390 domains, ~29k MTAs), probed with
//!   deliberately failing mail.
//! * **TwoWeekMX** — 22,548 domains queried for MX by BYU's outgoing
//!   MTAs over two weeks in February 2021 (high-demand recipient
//!   domains), plus per-domain query demand for the decile analysis.
//!
//! The real datasets are unavailable (institutional mail logs and a
//! notification campaign's address list), so these generators reproduce
//! every *published marginal*: the TLD mix of Table 1, the dataset sizes
//! of Table 2, the AS mix of Table 3, the Alexa-overlap of Table 7 and
//! the Zipf-like demand skew behind Table 5's deciles. All generation is
//! deterministic given a seed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alexa;
pub mod asn;
pub mod population;
pub mod providers;
pub mod tld;

pub use population::{DatasetKind, DomainSpec, MtaHost, Population, PopulationConfig};
