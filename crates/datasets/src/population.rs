//! Population generation: domains, their MX hosts, AS structure and
//! demand, matching the dataset shapes of Tables 1–3 of the paper.

use crate::alexa::{assign_tiers, AlexaTier};
use crate::asn::{
    AsSampler, NOTIFY_EMAIL_AS_COUNT, NOTIFY_EMAIL_TOP_ASES, TWO_WEEK_MX_AS_COUNT,
    TWO_WEEK_MX_TOP_ASES,
};
use crate::tld::{
    TldSampler, NOTIFY_EMAIL_TLD_COUNT, NOTIFY_EMAIL_TOP_TLDS, TWO_WEEK_MX_TLD_COUNT,
    TWO_WEEK_MX_TOP_TLDS,
};
use mailval_dns::Name;
use mailval_simnet::SimRng;
use std::collections::HashMap;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Which dataset to synthesize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// The notification-campaign domains (§4.1; also the basis of
    /// NotifyMX).
    NotifyEmail,
    /// The BYU outgoing-MX domains (§4.1).
    TwoWeekMx,
}

/// Paper dataset sizes (Table 2).
impl DatasetKind {
    /// Domains in the dataset at scale 1.0.
    pub fn paper_domain_count(self) -> usize {
        match self {
            DatasetKind::NotifyEmail => 26_695,
            DatasetKind::TwoWeekMx => 22_548,
        }
    }
}

/// One MTA host: a named machine with addresses, living in an AS.
#[derive(Debug, Clone)]
pub struct MtaHost {
    /// Host name (MX exchange target).
    pub name: Name,
    /// IPv4 address (every simulated host has one).
    pub ipv4: Ipv4Addr,
    /// Optional IPv6 address.
    pub ipv6: Option<Ipv6Addr>,
    /// AS announcing this host's prefix.
    pub asn: u32,
}

/// One recipient domain.
#[derive(Debug, Clone)]
pub struct DomainSpec {
    /// Index in the population (stable identifier).
    pub index: usize,
    /// Domain name.
    pub name: Name,
    /// TLD label.
    pub tld: String,
    /// AS of its MTA hosts.
    pub asn: u32,
    /// Organization name of that AS.
    pub as_name: String,
    /// Hosted on a shared provider pool?
    pub shared_provider: bool,
    /// Alexa membership (NotifyEmail only; `Unlisted` otherwise).
    pub alexa: AlexaTier,
    /// MX host indices (into [`Population::hosts`]) in preference order.
    pub host_indices: Vec<usize>,
    /// MX queries observed for this domain during the collection window
    /// (TwoWeekMX demand; drives the decile split of Table 5).
    pub demand_queries: u64,
    /// Did the June-2021 re-resolution fail (the 1% of NotifyMX, §4.2)?
    pub mx_reresolution_failed: bool,
}

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct PopulationConfig {
    /// Which dataset.
    pub kind: DatasetKind,
    /// Scale factor on the paper's domain count (1.0 = full scale).
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl PopulationConfig {
    /// Full-scale config.
    pub fn paper_scale(kind: DatasetKind, seed: u64) -> Self {
        PopulationConfig {
            kind,
            scale: 1.0,
            seed,
        }
    }

    /// Reduced-scale config for tests.
    pub fn test_scale(kind: DatasetKind, seed: u64) -> Self {
        PopulationConfig {
            kind,
            scale: 0.02,
            seed,
        }
    }
}

/// A generated dataset population.
#[derive(Debug, Clone)]
pub struct Population {
    /// The dataset this models.
    pub kind: DatasetKind,
    /// Domains.
    pub domains: Vec<DomainSpec>,
    /// Unique MTA hosts (shared across domains).
    pub hosts: Vec<MtaHost>,
}

struct PoolState {
    host_indices: Vec<usize>,
}

impl Population {
    /// Generate a population.
    pub fn generate(config: &PopulationConfig) -> Population {
        let mut rng = SimRng::new(config.seed);
        let n = ((config.kind.paper_domain_count() as f64) * config.scale).round() as usize;
        let n = n.max(10);

        let (tld_sampler, as_sampler) = match config.kind {
            DatasetKind::NotifyEmail => (
                TldSampler::new(NOTIFY_EMAIL_TOP_TLDS, NOTIFY_EMAIL_TLD_COUNT),
                AsSampler::new(
                    NOTIFY_EMAIL_TOP_ASES,
                    scale_count(NOTIFY_EMAIL_AS_COUNT, config.scale),
                ),
            ),
            DatasetKind::TwoWeekMx => (
                TldSampler::new(TWO_WEEK_MX_TOP_TLDS, TWO_WEEK_MX_TLD_COUNT),
                AsSampler::new(
                    TWO_WEEK_MX_TOP_ASES,
                    scale_count(TWO_WEEK_MX_AS_COUNT, config.scale),
                ),
            ),
        };

        // IPv6 share of hosts, calibrated to Table 2's address counts.
        let v6_prob = match config.kind {
            DatasetKind::NotifyEmail => 2_700.0 / 26_196.0,
            DatasetKind::TwoWeekMx => 471.0 / 10_666.0,
        };

        // Pass 1: per-domain TLD/AS assignment.
        struct Draft {
            tld: String,
            asn: u32,
            as_name: String,
            shared: bool,
        }
        let mut drafts = Vec::with_capacity(n);
        let mut as_domain_counts: HashMap<u32, usize> = HashMap::new();
        for _ in 0..n {
            let tld = tld_sampler.sample(&mut rng).to_string();
            let (asn, as_name, shared) = as_sampler.sample(&mut rng);
            *as_domain_counts.entry(asn).or_default() += 1;
            drafts.push(Draft {
                tld,
                asn,
                as_name: as_name.to_string(),
                shared,
            });
        }

        // Pass 2: build per-AS host pools sized to the hosting model:
        // big shared providers run pools ~ 4·sqrt(domains); small ASes
        // run 1–3 boxes.
        let mut pools: HashMap<u32, PoolState> = HashMap::new();
        let mut hosts: Vec<MtaHost> = Vec::new();
        let make_pool = |asn: u32,
                         shared: bool,
                         domain_count: usize,
                         hosts: &mut Vec<MtaHost>,
                         rng: &mut SimRng| {
            let size = if shared {
                ((4.0 * (domain_count as f64).sqrt()).ceil() as usize).max(2)
            } else {
                // Tail ASes are small hosting orgs running a few boxes;
                // the constant is tuned so unique-MTA counts land on
                // Table 2 (see EXPERIMENTS.md).
                ((2.2 * (domain_count as f64).sqrt()).ceil() as usize).clamp(1, 10)
            };
            let mut host_indices = Vec::with_capacity(size);
            for slot in 0..size {
                let idx = hosts.len();
                let ipv4 = index_to_v4(idx);
                let ipv6 = if rng.chance(v6_prob) {
                    Some(index_to_v6(idx))
                } else {
                    None
                };
                let name = Name::parse(&format!("mx{slot}.as{asn}.mail.sim")).expect("valid");
                hosts.push(MtaHost {
                    name,
                    ipv4,
                    ipv6,
                    asn,
                });
                host_indices.push(idx);
            }
            PoolState { host_indices }
        };

        // Demand model for TwoWeekMX: Zipf over rank with exponent 0.9,
        // scaled so the busiest domain sees ~50k queries in two weeks.
        let mut demand_ranks: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut demand_ranks);

        let mut domains = Vec::with_capacity(n);
        for (i, draft) in drafts.into_iter().enumerate() {
            let count = as_domain_counts[&draft.asn];
            let pool_missing = !pools.contains_key(&draft.asn);
            if pool_missing {
                let pool = make_pool(draft.asn, draft.shared, count, &mut hosts, &mut rng);
                pools.insert(draft.asn, pool);
            }
            let pool = &pools[&draft.asn];
            // Number of MX records for the domain.
            let mx_count = match rng.next_f64() {
                x if x < 0.55 => 1,
                x if x < 0.90 => 2,
                _ => 3,
            }
            .min(pool.host_indices.len());
            // Pick distinct hosts from the pool.
            let mut host_indices = Vec::with_capacity(mx_count);
            let mut tries = 0;
            while host_indices.len() < mx_count && tries < 20 {
                let candidate = *rng.pick(&pool.host_indices);
                if !host_indices.contains(&candidate) {
                    host_indices.push(candidate);
                }
                tries += 1;
            }
            let demand_queries = match config.kind {
                DatasetKind::TwoWeekMx => {
                    let rank = demand_ranks[i] + 1;
                    ((50_000.0 / (rank as f64).powf(0.9)).ceil() as u64).max(1)
                }
                DatasetKind::NotifyEmail => 0,
            };
            let name = Name::parse(&format!("org{i:05}.{}", draft.tld)).expect("valid");
            domains.push(DomainSpec {
                index: i,
                name,
                tld: draft.tld,
                asn: draft.asn,
                as_name: draft.as_name,
                shared_provider: draft.shared,
                alexa: AlexaTier::Unlisted,
                host_indices,
                demand_queries,
                mx_reresolution_failed: false,
            });
        }

        // Alexa tiers (NotifyEmail only) and the 1% NotifyMX
        // re-resolution failures (§4.2).
        if config.kind == DatasetKind::NotifyEmail {
            let tiers = assign_tiers(n, &mut rng);
            for (d, tier) in domains.iter_mut().zip(tiers) {
                d.alexa = tier;
            }
            for d in domains.iter_mut() {
                d.mx_reresolution_failed = rng.chance(305.0 / 26_695.0);
            }
        }

        Population {
            kind: config.kind,
            domains,
            hosts,
        }
    }

    /// Unique hosts reachable via any MX of any domain (the NotifyMX /
    /// TwoWeekMX "MTAs" unit).
    pub fn used_host_indices(&self) -> Vec<usize> {
        let mut used: Vec<bool> = vec![false; self.hosts.len()];
        for d in &self.domains {
            for &h in &d.host_indices {
                used[h] = true;
            }
        }
        (0..self.hosts.len()).filter(|&i| used[i]).collect()
    }

    /// Unique first-preference hosts (the NotifyEmail "MTAs" unit: the
    /// paper delivered to the first responsive MTA only).
    pub fn first_host_indices(&self) -> Vec<usize> {
        let mut used: Vec<bool> = vec![false; self.hosts.len()];
        for d in &self.domains {
            if let Some(&h) = d.host_indices.first() {
                used[h] = true;
            }
        }
        (0..self.hosts.len()).filter(|&i| used[i]).collect()
    }

    /// (IPv4 count, IPv6 count) over a host-index set.
    pub fn address_counts(&self, host_indices: &[usize]) -> (usize, usize) {
        let v4 = host_indices.len();
        let v6 = host_indices
            .iter()
            .filter(|&&i| self.hosts[i].ipv6.is_some())
            .count();
        (v4, v6)
    }

    /// Decile split of domains by demand (Decile 1 = most queried), as in
    /// Table 5. Only meaningful for TwoWeekMX.
    pub fn demand_deciles(&self) -> Vec<Vec<usize>> {
        let mut order: Vec<usize> = (0..self.domains.len()).collect();
        order.sort_by(|&a, &b| {
            self.domains[b]
                .demand_queries
                .cmp(&self.domains[a].demand_queries)
                .then(a.cmp(&b))
        });
        let n = order.len();
        let mut deciles = Vec::with_capacity(10);
        for d in 0..10 {
            let start = d * n / 10;
            let end = (d + 1) * n / 10;
            deciles.push(order[start..end].to_vec());
        }
        deciles
    }
}

fn scale_count(count: usize, scale: f64) -> usize {
    ((count as f64) * scale).round().max(12.0) as usize
}

/// Deterministic synthetic IPv4 for host index `i` (TEST-NET-free
/// 100.64/10 + 10/8 style space; uniqueness is what matters).
fn index_to_v4(i: usize) -> Ipv4Addr {
    let v = 0x0A00_0000u32 + i as u32; // 10.0.0.0/8
    Ipv4Addr::from(v)
}

/// Deterministic synthetic IPv6 for host index `i`.
fn index_to_v6(i: usize) -> Ipv6Addr {
    Ipv6Addr::new(0x2001, 0xdb8, 0x4d58, 0, 0, 0, (i >> 16) as u16, i as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_counts_match_table2_shape() {
        let pop = Population::generate(&PopulationConfig {
            kind: DatasetKind::TwoWeekMx,
            scale: 0.25,
            seed: 42,
        });
        let n = pop.domains.len();
        assert_eq!(n, (22_548.0 * 0.25f64).round() as usize);
        // MTAs-to-domains ratio: the paper has 11,137 / 22,548 ≈ 0.49.
        let used = pop.used_host_indices();
        let ratio = used.len() as f64 / n as f64;
        assert!(
            (0.30..0.75).contains(&ratio),
            "host/domain ratio {ratio} out of range"
        );
        // IPv6 share ≈ 4.4% of hosts.
        let (v4, v6) = pop.address_counts(&used);
        let share = v6 as f64 / v4 as f64;
        assert!((0.01..0.10).contains(&share), "v6 share {share}");
    }

    #[test]
    fn notify_email_first_hosts_fewer_than_all() {
        let pop = Population::generate(&PopulationConfig {
            kind: DatasetKind::NotifyEmail,
            scale: 0.1,
            seed: 7,
        });
        let first = pop.first_host_indices();
        let all = pop.used_host_indices();
        assert!(first.len() < all.len());
        // Paper ratio: 18,851 first-responsive vs ~28,896 all ≈ 0.65.
        let ratio = first.len() as f64 / all.len() as f64;
        assert!((0.4..0.95).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = PopulationConfig::test_scale(DatasetKind::TwoWeekMx, 99);
        let a = Population::generate(&cfg);
        let b = Population::generate(&cfg);
        assert_eq!(a.domains.len(), b.domains.len());
        assert_eq!(a.hosts.len(), b.hosts.len());
        for (x, y) in a.domains.iter().zip(&b.domains) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.host_indices, y.host_indices);
            assert_eq!(x.demand_queries, y.demand_queries);
        }
    }

    #[test]
    fn domains_have_hosts() {
        let pop = Population::generate(&PopulationConfig::test_scale(DatasetKind::TwoWeekMx, 3));
        for d in &pop.domains {
            assert!(!d.host_indices.is_empty(), "{} has no MX", d.name);
            for &h in &d.host_indices {
                assert!(h < pop.hosts.len());
            }
        }
    }

    #[test]
    fn unique_domain_names_and_ips() {
        let pop = Population::generate(&PopulationConfig::test_scale(DatasetKind::NotifyEmail, 3));
        let mut names = std::collections::HashSet::new();
        for d in &pop.domains {
            assert!(names.insert(d.name.clone()), "dup {}", d.name);
        }
        let mut ips = std::collections::HashSet::new();
        for h in &pop.hosts {
            assert!(ips.insert(h.ipv4), "dup ip {}", h.ipv4);
        }
    }

    #[test]
    fn deciles_are_even_and_ordered() {
        let pop = Population::generate(&PopulationConfig::test_scale(DatasetKind::TwoWeekMx, 11));
        let deciles = pop.demand_deciles();
        assert_eq!(deciles.len(), 10);
        let total: usize = deciles.iter().map(Vec::len).sum();
        assert_eq!(total, pop.domains.len());
        // Demand is non-increasing across decile boundaries.
        let max_d10 = deciles[9]
            .iter()
            .map(|&i| pop.domains[i].demand_queries)
            .max()
            .unwrap();
        let min_d1 = deciles[0]
            .iter()
            .map(|&i| pop.domains[i].demand_queries)
            .min()
            .unwrap();
        assert!(min_d1 >= max_d10);
    }

    #[test]
    fn google_hosts_large_share_of_twoweek() {
        let pop = Population::generate(&PopulationConfig {
            kind: DatasetKind::TwoWeekMx,
            scale: 0.2,
            seed: 5,
        });
        let google = pop.domains.iter().filter(|d| d.asn == 15169).count();
        let share = google as f64 / pop.domains.len() as f64;
        assert!((0.28..0.36).contains(&share), "google share {share}");
    }

    #[test]
    fn reresolution_failures_only_in_notify() {
        let notify =
            Population::generate(&PopulationConfig::test_scale(DatasetKind::NotifyEmail, 13));
        let failures = notify
            .domains
            .iter()
            .filter(|d| d.mx_reresolution_failed)
            .count();
        assert!(failures > 0, "some failures expected");
        let share = failures as f64 / notify.domains.len() as f64;
        assert!(share < 0.04, "≈1% expected, got {share}");
        let twoweek =
            Population::generate(&PopulationConfig::test_scale(DatasetKind::TwoWeekMx, 13));
        assert!(twoweek.domains.iter().all(|d| !d.mx_reresolution_failed));
    }
}
