//! DKIM key records (RFC 6376 §3.6.1), published as TXT at
//! `<selector>._domainkey.<domain>`.

use crate::taglist::TagList;
use mailval_crypto::rsa::{decode_spki, encode_spki, RsaPublicKey};
use mailval_crypto::HashAlg;

/// A parsed key record.
#[derive(Debug, Clone)]
pub struct DkimKeyRecord {
    /// `h=`: acceptable hash algorithms; empty = all.
    pub hash_algs: Vec<HashAlg>,
    /// `k=`: key type (only `rsa` supported).
    pub key_type: String,
    /// The public key from `p=`; `None` means the key is revoked
    /// (`p=` empty).
    pub public_key: Option<RsaPublicKey>,
    /// `t=` flags, e.g. `y` (testing), `s` (strict identity).
    pub flags: Vec<String>,
    /// `s=` service types; empty = all.
    pub services: Vec<String>,
}

/// Key record errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyRecordError {
    /// Malformed tag list.
    TagList(String),
    /// `v=` present but not `DKIM1` (must be first if present).
    BadVersion,
    /// Key type other than rsa.
    UnsupportedKeyType(String),
    /// Missing `p=` tag.
    MissingKey,
    /// `p=` could not be decoded as base64 SPKI.
    BadKey,
}

impl std::fmt::Display for KeyRecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KeyRecordError::TagList(e) => write!(f, "bad tag list: {e}"),
            KeyRecordError::BadVersion => write!(f, "bad v= tag"),
            KeyRecordError::UnsupportedKeyType(k) => write!(f, "unsupported key type {k:?}"),
            KeyRecordError::MissingKey => write!(f, "missing p= tag"),
            KeyRecordError::BadKey => write!(f, "undecodable p= key"),
        }
    }
}

impl std::error::Error for KeyRecordError {}

impl DkimKeyRecord {
    /// Build a record for a public key (for publication).
    pub fn for_key(key: &RsaPublicKey) -> DkimKeyRecord {
        DkimKeyRecord {
            hash_algs: Vec::new(),
            key_type: "rsa".into(),
            public_key: Some(key.clone()),
            flags: Vec::new(),
            services: Vec::new(),
        }
    }

    /// Serialize to the TXT record text.
    pub fn to_record_text(&self) -> String {
        let p = match &self.public_key {
            Some(key) => mailval_crypto::base64::encode(&encode_spki(key)),
            None => String::new(),
        };
        let mut parts = vec!["v=DKIM1".to_string(), format!("k={}", self.key_type)];
        if !self.hash_algs.is_empty() {
            let names: Vec<&str> = self
                .hash_algs
                .iter()
                .map(|a| match a {
                    HashAlg::Sha256 => "sha256",
                    HashAlg::Sha1 => "sha1",
                })
                .collect();
            parts.push(format!("h={}", names.join(":")));
        }
        if !self.flags.is_empty() {
            parts.push(format!("t={}", self.flags.join(":")));
        }
        parts.push(format!("p={p}"));
        parts.join("; ")
    }

    /// Parse a key record TXT string.
    pub fn parse(txt: &str) -> Result<DkimKeyRecord, KeyRecordError> {
        let tags = TagList::parse(txt).map_err(|e| KeyRecordError::TagList(e.to_string()))?;
        if let Some(v) = tags.get("v") {
            if !v.trim().eq_ignore_ascii_case("DKIM1") {
                return Err(KeyRecordError::BadVersion);
            }
        }
        let key_type = tags.get("k").unwrap_or("rsa").trim().to_string();
        if !key_type.eq_ignore_ascii_case("rsa") {
            return Err(KeyRecordError::UnsupportedKeyType(key_type));
        }
        let p = tags.get_compact("p").ok_or(KeyRecordError::MissingKey)?;
        let public_key = if p.is_empty() {
            None
        } else {
            let der = mailval_crypto::base64::decode(&p).map_err(|_| KeyRecordError::BadKey)?;
            Some(decode_spki(&der).map_err(|_| KeyRecordError::BadKey)?)
        };
        let hash_algs = tags
            .get("h")
            .map(|h| {
                h.split(':')
                    .filter_map(|a| match a.trim().to_ascii_lowercase().as_str() {
                        "sha256" => Some(HashAlg::Sha256),
                        "sha1" => Some(HashAlg::Sha1),
                        _ => None,
                    })
                    .collect()
            })
            .unwrap_or_default();
        let flags = tags
            .get("t")
            .map(|t| t.split(':').map(|f| f.trim().to_string()).collect())
            .unwrap_or_default();
        let services = tags
            .get("s")
            .map(|s| s.split(':').map(|f| f.trim().to_string()).collect())
            .unwrap_or_default();
        Ok(DkimKeyRecord {
            hash_algs,
            key_type,
            public_key,
            flags,
            services,
        })
    }

    /// Does this key permit the given hash algorithm?
    pub fn allows_hash(&self, alg: HashAlg) -> bool {
        self.hash_algs.is_empty() || self.hash_algs.contains(&alg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mailval_crypto::bigint::SplitMix64;
    use mailval_crypto::rsa::RsaKeyPair;

    fn keypair() -> RsaKeyPair {
        let mut rng = SplitMix64::new(77);
        RsaKeyPair::generate(512, &mut rng)
    }

    #[test]
    fn roundtrip() {
        let kp = keypair();
        let record = DkimKeyRecord::for_key(&kp.public);
        let text = record.to_record_text();
        assert!(text.starts_with("v=DKIM1; k=rsa; p="));
        let parsed = DkimKeyRecord::parse(&text).unwrap();
        assert_eq!(parsed.public_key.unwrap(), kp.public);
    }

    #[test]
    fn revoked_key() {
        let parsed = DkimKeyRecord::parse("v=DKIM1; k=rsa; p=").unwrap();
        assert!(parsed.public_key.is_none());
    }

    #[test]
    fn defaults() {
        let kp = keypair();
        let p = mailval_crypto::base64::encode(&encode_spki(&kp.public));
        // No v=, no k= — both default.
        let parsed = DkimKeyRecord::parse(&format!("p={p}")).unwrap();
        assert_eq!(parsed.key_type, "rsa");
        assert!(parsed.allows_hash(HashAlg::Sha256));
        assert!(parsed.allows_hash(HashAlg::Sha1));
    }

    #[test]
    fn hash_restriction() {
        let kp = keypair();
        let p = mailval_crypto::base64::encode(&encode_spki(&kp.public));
        let parsed = DkimKeyRecord::parse(&format!("v=DKIM1; h=sha256; p={p}")).unwrap();
        assert!(parsed.allows_hash(HashAlg::Sha256));
        assert!(!parsed.allows_hash(HashAlg::Sha1));
    }

    #[test]
    fn errors() {
        assert!(matches!(
            DkimKeyRecord::parse("v=DKIM2; p="),
            Err(KeyRecordError::BadVersion)
        ));
        assert!(matches!(
            DkimKeyRecord::parse("v=DKIM1; k=ed25519; p="),
            Err(KeyRecordError::UnsupportedKeyType(_))
        ));
        assert!(matches!(
            DkimKeyRecord::parse("v=DKIM1; k=rsa"),
            Err(KeyRecordError::MissingKey)
        ));
        assert!(matches!(
            DkimKeyRecord::parse("v=DKIM1; k=rsa; p=!!!"),
            Err(KeyRecordError::BadKey)
        ));
    }
}
