//! The `DKIM-Signature` header (RFC 6376 §3.5).

use crate::canon::Canonicalization;
use crate::taglist::TagList;
use mailval_crypto::HashAlg;
use mailval_dns::Name;

/// A parsed `DKIM-Signature` header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DkimSignature {
    /// `a=`: signing algorithm.
    pub algorithm: HashAlg,
    /// `b=`: the signature bytes.
    pub signature: Vec<u8>,
    /// `bh=`: the body hash bytes.
    pub body_hash: Vec<u8>,
    /// `c=`: header canonicalization.
    pub header_canon: Canonicalization,
    /// `c=`: body canonicalization.
    pub body_canon: Canonicalization,
    /// `d=`: signing domain (SDID).
    pub domain: Name,
    /// `h=`: signed header field names, in order.
    pub signed_headers: Vec<String>,
    /// `s=`: selector.
    pub selector: Name,
    /// `i=`: agent/user identifier, if present.
    pub identity: Option<String>,
    /// `l=`: body length limit, if present.
    pub body_length: Option<u64>,
    /// `t=`: signing timestamp, if present.
    pub timestamp: Option<u64>,
    /// `x=`: expiration, if present.
    pub expiration: Option<u64>,
}

/// Signature parse/validation failures (verifier maps these to
/// `permerror`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SignatureError {
    /// Not a valid tag list.
    TagList(String),
    /// Wrong or missing `v=`.
    BadVersion,
    /// A required tag is missing.
    MissingTag(&'static str),
    /// A tag value is malformed.
    BadTag(&'static str),
    /// `h=` does not include `From` (REQUIRED by §3.5).
    FromNotSigned,
    /// Unsupported algorithm or query method.
    Unsupported(&'static str),
}

impl std::fmt::Display for SignatureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SignatureError::TagList(e) => write!(f, "bad tag list: {e}"),
            SignatureError::BadVersion => write!(f, "bad v= tag"),
            SignatureError::MissingTag(t) => write!(f, "missing {t}= tag"),
            SignatureError::BadTag(t) => write!(f, "bad {t}= tag"),
            SignatureError::FromNotSigned => write!(f, "From header not signed"),
            SignatureError::Unsupported(what) => write!(f, "unsupported {what}"),
        }
    }
}

impl std::error::Error for SignatureError {}

impl DkimSignature {
    /// The DNS name of the key record: `<selector>._domainkey.<domain>`
    /// (§3.6.2.1) — the exact name whose TXT query the paper's apparatus
    /// watches for to call an MTA DKIM-validating.
    pub fn key_record_name(&self) -> Name {
        self.selector
            .concat(&Name::parse("_domainkey").unwrap())
            .and_then(|n| n.concat(&self.domain))
            .expect("selector+domain fit in a name")
    }

    /// Parse the value of a `DKIM-Signature` header.
    pub fn parse(value: &str) -> Result<DkimSignature, SignatureError> {
        let tags = TagList::parse(value).map_err(|e| SignatureError::TagList(e.to_string()))?;
        if tags.get("v").map(str::trim) != Some("1") {
            return Err(SignatureError::BadVersion);
        }
        let algorithm = match tags.get("a").ok_or(SignatureError::MissingTag("a"))? {
            a if a.eq_ignore_ascii_case("rsa-sha256") => HashAlg::Sha256,
            a if a.eq_ignore_ascii_case("rsa-sha1") => HashAlg::Sha1,
            _ => return Err(SignatureError::Unsupported("algorithm")),
        };
        let signature = mailval_crypto::base64::decode(
            &tags
                .get_compact("b")
                .ok_or(SignatureError::MissingTag("b"))?,
        )
        .map_err(|_| SignatureError::BadTag("b"))?;
        let body_hash = mailval_crypto::base64::decode(
            &tags
                .get_compact("bh")
                .ok_or(SignatureError::MissingTag("bh"))?,
        )
        .map_err(|_| SignatureError::BadTag("bh"))?;
        let (header_canon, body_canon) = match tags.get("c") {
            None => (Canonicalization::Simple, Canonicalization::Simple),
            Some(c) => {
                let (h, b) = match c.find('/') {
                    Some(pos) => (&c[..pos], &c[pos + 1..]),
                    None => (c, "simple"),
                };
                (
                    Canonicalization::parse(h.trim()).ok_or(SignatureError::BadTag("c"))?,
                    Canonicalization::parse(b.trim()).ok_or(SignatureError::BadTag("c"))?,
                )
            }
        };
        let domain = Name::parse(tags.get("d").ok_or(SignatureError::MissingTag("d"))?.trim())
            .map_err(|_| SignatureError::BadTag("d"))?;
        let selector = Name::parse(tags.get("s").ok_or(SignatureError::MissingTag("s"))?.trim())
            .map_err(|_| SignatureError::BadTag("s"))?;
        let signed_headers: Vec<String> = tags
            .get("h")
            .ok_or(SignatureError::MissingTag("h"))?
            .split(':')
            .map(|h| h.trim().to_string())
            .filter(|h| !h.is_empty())
            .collect();
        if signed_headers.is_empty() {
            return Err(SignatureError::BadTag("h"));
        }
        if !signed_headers
            .iter()
            .any(|h| h.eq_ignore_ascii_case("from"))
        {
            return Err(SignatureError::FromNotSigned);
        }
        if let Some(q) = tags.get("q") {
            if !q
                .split(':')
                .any(|m| m.trim().eq_ignore_ascii_case("dns/txt"))
            {
                return Err(SignatureError::Unsupported("query method"));
            }
        }
        let parse_u64 = |tag: &'static str| -> Result<Option<u64>, SignatureError> {
            match tags.get(tag) {
                None => Ok(None),
                Some(v) => v
                    .trim()
                    .parse::<u64>()
                    .map(Some)
                    .map_err(|_| SignatureError::BadTag(tag)),
            }
        };
        Ok(DkimSignature {
            algorithm,
            signature,
            body_hash,
            header_canon,
            body_canon,
            domain,
            selector,
            identity: tags.get("i").map(|s| s.to_string()),
            body_length: parse_u64("l")?,
            timestamp: parse_u64("t")?,
            expiration: parse_u64("x")?,
            signed_headers,
        })
    }

    /// Serialize to a header value with the given `b=` content (empty for
    /// the signing pass).
    pub fn to_header_value(&self, b_value: &str) -> String {
        let alg = match self.algorithm {
            HashAlg::Sha256 => "rsa-sha256",
            HashAlg::Sha1 => "rsa-sha1",
        };
        let mut parts = vec![
            "v=1".to_string(),
            format!("a={alg}"),
            format!("c={}/{}", self.header_canon, self.body_canon),
            format!("d={}", self.domain),
            format!("s={}", self.selector),
        ];
        if let Some(t) = self.timestamp {
            parts.push(format!("t={t}"));
        }
        if let Some(x) = self.expiration {
            parts.push(format!("x={x}"));
        }
        if let Some(l) = self.body_length {
            parts.push(format!("l={l}"));
        }
        if let Some(i) = &self.identity {
            parts.push(format!("i={i}"));
        }
        parts.push(format!("h={}", self.signed_headers.join(":")));
        parts.push(format!(
            "bh={}",
            mailval_crypto::base64::encode(&self.body_hash)
        ));
        parts.push(format!("b={b_value}"));
        parts.join("; ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "v=1; a=rsa-sha256; d=example.net; s=brisbane;\r\n\
\tc=relaxed/simple; q=dns/txt; t=1117574938; x=1118006938; l=200;\r\n\
\th=from:to:subject:date; bh=MTIzNDU2Nzg5MDEyMzQ1Njc4OTAxMjM0NTY3ODkwMTI=;\r\n\
\tb=dzdVyOfAKCdLXdJOc9G2q8LoXSlEniSbav+yuU4zGeeruD00lszZVoG4ZHRNiYzR";

    #[test]
    fn parse_rfc_style_signature() {
        let sig = DkimSignature::parse(SAMPLE).unwrap();
        assert_eq!(sig.algorithm, HashAlg::Sha256);
        assert_eq!(sig.domain, Name::parse("example.net").unwrap());
        assert_eq!(sig.selector, Name::parse("brisbane").unwrap());
        assert_eq!(sig.header_canon, Canonicalization::Relaxed);
        assert_eq!(sig.body_canon, Canonicalization::Simple);
        assert_eq!(sig.signed_headers, vec!["from", "to", "subject", "date"]);
        assert_eq!(sig.body_length, Some(200));
        assert_eq!(sig.timestamp, Some(1117574938));
        assert_eq!(sig.body_hash.len(), 32);
        assert_eq!(
            sig.key_record_name(),
            Name::parse("brisbane._domainkey.example.net").unwrap()
        );
    }

    #[test]
    fn missing_required_tags() {
        assert_eq!(
            DkimSignature::parse("v=1; a=rsa-sha256; d=x.test; s=s; h=from; b=aa"),
            Err(SignatureError::MissingTag("bh"))
        );
        assert_eq!(
            DkimSignature::parse("v=1; a=rsa-sha256; s=s; h=from; b=; bh="),
            Err(SignatureError::MissingTag("d"))
        );
    }

    #[test]
    fn from_must_be_signed() {
        assert_eq!(
            DkimSignature::parse("v=1; a=rsa-sha256; d=x.test; s=s; h=to:subject; b=; bh="),
            Err(SignatureError::FromNotSigned)
        );
    }

    #[test]
    fn bad_version_and_algorithm() {
        assert_eq!(
            DkimSignature::parse("v=2; a=rsa-sha256; d=x.test; s=s; h=from; b=; bh="),
            Err(SignatureError::BadVersion)
        );
        assert_eq!(
            DkimSignature::parse("v=1; a=ed25519-sha256; d=x.test; s=s; h=from; b=; bh="),
            Err(SignatureError::Unsupported("algorithm"))
        );
    }

    #[test]
    fn default_canon_is_simple_simple() {
        let sig =
            DkimSignature::parse("v=1; a=rsa-sha256; d=x.test; s=s; h=from; b=; bh=").unwrap();
        assert_eq!(sig.header_canon, Canonicalization::Simple);
        assert_eq!(sig.body_canon, Canonicalization::Simple);
    }

    #[test]
    fn single_sided_c_tag() {
        let sig =
            DkimSignature::parse("v=1; a=rsa-sha256; c=relaxed; d=x.test; s=s; h=from; b=; bh=")
                .unwrap();
        assert_eq!(sig.header_canon, Canonicalization::Relaxed);
        assert_eq!(sig.body_canon, Canonicalization::Simple);
    }

    #[test]
    fn roundtrip_serialize_parse() {
        let sig = DkimSignature::parse(SAMPLE).unwrap();
        let value = sig.to_header_value(&mailval_crypto::base64::encode(&sig.signature));
        let reparsed = DkimSignature::parse(&value).unwrap();
        assert_eq!(reparsed.domain, sig.domain);
        assert_eq!(reparsed.signed_headers, sig.signed_headers);
        assert_eq!(reparsed.body_hash, sig.body_hash);
        assert_eq!(reparsed.signature, sig.signature);
    }

    #[test]
    fn unsupported_query_method() {
        assert_eq!(
            DkimSignature::parse("v=1; a=rsa-sha256; q=dns/frob; d=x.test; s=s; h=from; b=; bh="),
            Err(SignatureError::Unsupported("query method"))
        );
    }
}
