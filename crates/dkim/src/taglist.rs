//! The DKIM `tag=value` list syntax (RFC 6376 §3.2), shared by
//! `DKIM-Signature` headers and key records.

use std::collections::HashMap;

/// A parsed tag list. Tag names are case-sensitive per the RFC (and are
//  conventionally lowercase).
#[derive(Debug, Clone, Default)]
pub struct TagList {
    tags: Vec<(String, String)>,
    index: HashMap<String, usize>,
}

/// Tag-list parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TagListError {
    /// An entry had no `=`.
    MissingEquals,
    /// An entry had an empty tag name.
    EmptyName,
    /// A tag name appeared twice (§3.2: tags MUST NOT be duplicated).
    Duplicate(String),
}

impl std::fmt::Display for TagListError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TagListError::MissingEquals => write!(f, "tag without '='"),
            TagListError::EmptyName => write!(f, "empty tag name"),
            TagListError::Duplicate(t) => write!(f, "duplicate tag {t:?}"),
        }
    }
}

impl std::error::Error for TagListError {}

impl TagList {
    /// Parse a tag list. Folding whitespace around tags and values is
    /// stripped; whitespace *inside* values is preserved (needed for
    /// `h=a : b` style lists, which are normalized later by the caller).
    pub fn parse(input: &str) -> Result<TagList, TagListError> {
        let mut list = TagList::default();
        for entry in input.split(';') {
            let entry = entry.trim_matches([' ', '\t', '\r', '\n']);
            if entry.is_empty() {
                continue; // trailing ';' is legal
            }
            let eq = entry.find('=').ok_or(TagListError::MissingEquals)?;
            let name = entry[..eq].trim_matches([' ', '\t', '\r', '\n']);
            if name.is_empty() {
                return Err(TagListError::EmptyName);
            }
            let value = entry[eq + 1..].trim_matches([' ', '\t', '\r', '\n']);
            if list.index.contains_key(name) {
                return Err(TagListError::Duplicate(name.to_string()));
            }
            list.index.insert(name.to_string(), list.tags.len());
            list.tags.push((name.to_string(), value.to_string()));
        }
        Ok(list)
    }

    /// Get a tag's value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.index.get(name).map(|&i| self.tags[i].1.as_str())
    }

    /// Get a tag's value with all whitespace removed (for base64 values
    /// folded across lines).
    pub fn get_compact(&self, name: &str) -> Option<String> {
        self.get(name)
            .map(|v| v.chars().filter(|c| !c.is_ascii_whitespace()).collect())
    }

    /// All tags in order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.tags.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_parse() {
        let t = TagList::parse("v=1; a=rsa-sha256; d=example.net; s=brisbane;").unwrap();
        assert_eq!(t.get("v"), Some("1"));
        assert_eq!(t.get("a"), Some("rsa-sha256"));
        assert_eq!(t.get("d"), Some("example.net"));
        assert_eq!(t.get("s"), Some("brisbane"));
        assert_eq!(t.get("x"), None);
    }

    #[test]
    fn folded_values() {
        let t = TagList::parse("b=abc\r\n\tdef; bh= xyz ").unwrap();
        assert_eq!(t.get_compact("b").unwrap(), "abcdef");
        assert_eq!(t.get_compact("bh").unwrap(), "xyz");
    }

    #[test]
    fn empty_value_allowed() {
        // b= is empty during signing; p= empty means revoked key.
        let t = TagList::parse("p=; v=DKIM1").unwrap();
        assert_eq!(t.get("p"), Some(""));
    }

    #[test]
    fn errors() {
        assert!(matches!(
            TagList::parse("novalue"),
            Err(TagListError::MissingEquals)
        ));
        assert!(matches!(TagList::parse("=x"), Err(TagListError::EmptyName)));
        assert!(matches!(
            TagList::parse("a=1; a=2"),
            Err(TagListError::Duplicate(_))
        ));
    }

    #[test]
    fn order_preserved() {
        let t = TagList::parse("z=1; y=2; x=3").unwrap();
        let names: Vec<&str> = t.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["z", "y", "x"]);
    }
}
