//! Resumable DKIM verification (RFC 6376 §6).
//!
//! Like the SPF evaluator, the verifier is sans-IO: it yields the
//! key-record DNS question (`<selector>._domainkey.<domain>` TXT) and is
//! resumed with the resolver outcome. That TXT query is the signal the
//! paper's apparatus logs to classify a receiving MTA as DKIM-validating.

use crate::key::DkimKeyRecord;
use crate::sign::{body_hash_matches, verification_digest};
use crate::signature::DkimSignature;
use mailval_dns::resolver::ResolveOutcome;
use mailval_dns::rr::RecordType;
use mailval_dns::Name;
use mailval_smtp::mail::MailMessage;

/// DKIM verification results (RFC 8601 §2.7.1 vocabulary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DkimResult {
    /// The signature verified.
    Pass,
    /// The signature did not verify (reason attached).
    Fail(String),
    /// The message carries no DKIM-Signature header.
    None,
    /// The signature is unusable (syntax, unsupported algorithm...).
    PermError(String),
    /// Key retrieval failed transiently.
    TempError,
    /// Signature present but not checkable (revoked key).
    Neutral(String),
}

/// Next step of verification.
#[derive(Debug, Clone)]
pub enum VerifyStep {
    /// Resolve this TXT name and resume with the outcome.
    NeedKey {
        /// Key record name.
        name: Name,
        /// Always TXT.
        rtype: RecordType,
    },
    /// Verification finished.
    Done(DkimResult),
}

/// A resumable verifier for one message's *first* DKIM signature.
/// (Messages with multiple signatures can run one verifier per header.)
pub struct DkimVerifier {
    message: MailMessage,
    raw_sig_value: Option<String>,
    signature: Option<DkimSignature>,
    done: bool,
}

impl DkimVerifier {
    /// Prepare verification of the `index`-th DKIM-Signature header
    /// (0-based).
    pub fn new(message: &MailMessage, index: usize) -> DkimVerifier {
        let raw_sig_value = message
            .headers_named("DKIM-Signature")
            .nth(index)
            .map(|h| h.raw_value.clone());
        DkimVerifier {
            message: message.clone(),
            raw_sig_value,
            signature: None,
            done: false,
        }
    }

    /// Number of DKIM-Signature headers on a message.
    pub fn signature_count(message: &MailMessage) -> usize {
        message.headers_named("DKIM-Signature").count()
    }

    /// The parsed signature (available after [`DkimVerifier::start`] if
    /// parsing succeeded).
    pub fn signature(&self) -> Option<&DkimSignature> {
        self.signature.as_ref()
    }

    /// Begin: parses the signature and checks the body hash before asking
    /// for the key (§6.1: syntax and bh can be checked without DNS —
    /// but note many real verifiers fetch the key first; the DNS
    /// observable is the same either way).
    pub fn start(&mut self) -> VerifyStep {
        assert!(!self.done, "verifier already finished");
        let Some(raw) = &self.raw_sig_value else {
            self.done = true;
            return VerifyStep::Done(DkimResult::None);
        };
        let sig = match DkimSignature::parse(raw) {
            Ok(sig) => sig,
            Err(e) => {
                self.done = true;
                return VerifyStep::Done(DkimResult::PermError(e.to_string()));
            }
        };
        let name = sig.key_record_name();
        self.signature = Some(sig);
        VerifyStep::NeedKey {
            name,
            rtype: RecordType::Txt,
        }
    }

    /// Resume with the key-record lookup outcome.
    pub fn on_key(&mut self, outcome: ResolveOutcome) -> VerifyStep {
        assert!(!self.done, "verifier already finished");
        let sig = self.signature.as_ref().expect("on_key before start");
        self.done = true;
        let records = match outcome {
            ResolveOutcome::Records(records) => records,
            ResolveOutcome::NoData | ResolveOutcome::NxDomain => {
                return VerifyStep::Done(DkimResult::PermError("no key for signature".into()));
            }
            ResolveOutcome::Timeout | ResolveOutcome::ServFail => {
                return VerifyStep::Done(DkimResult::TempError);
            }
        };
        // §3.6.2.2: use the first parsable TXT string as the key record.
        let key_record = records
            .iter()
            .filter_map(|r| r.rdata.txt_joined())
            .find_map(|txt| DkimKeyRecord::parse(&txt).ok());
        let Some(key_record) = key_record else {
            return VerifyStep::Done(DkimResult::PermError("unusable key record".into()));
        };
        let Some(public_key) = &key_record.public_key else {
            return VerifyStep::Done(DkimResult::Neutral("key revoked".into()));
        };
        if !key_record.allows_hash(sig.algorithm) {
            return VerifyStep::Done(DkimResult::PermError(
                "hash algorithm not permitted by key".into(),
            ));
        }
        if !body_hash_matches(&self.message, sig) {
            return VerifyStep::Done(DkimResult::Fail("body hash mismatch".into()));
        }
        let digest = verification_digest(
            &self.message,
            sig,
            self.raw_sig_value.as_ref().expect("sig exists"),
        );
        match public_key.verify_digest(sig.algorithm, &digest, &sig.signature) {
            Ok(()) => VerifyStep::Done(DkimResult::Pass),
            Err(_) => VerifyStep::Done(DkimResult::Fail("signature mismatch".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::Canonicalization;
    use crate::sign::{sign_message, SignConfig};
    use mailval_crypto::bigint::SplitMix64;
    use mailval_crypto::rsa::RsaKeyPair;
    use mailval_dns::rr::RData;
    use mailval_dns::Record;

    fn keypair() -> RsaKeyPair {
        let mut rng = SplitMix64::new(2024);
        RsaKeyPair::generate(512, &mut rng)
    }

    fn sample_message() -> MailMessage {
        let mut m = MailMessage::new();
        m.add_header("From", "Notifier <spf-test@d1.dsav-mail.dns-lab.org>");
        m.add_header("To", "operator@target.test");
        m.add_header("Subject", "Network notification");
        m.add_header("Date", "Mon, 12 Oct 2020 10:00:00 +0000");
        m.set_body_text("Dear operator,\nYour network has an issue.\n");
        m
    }

    fn config() -> SignConfig {
        SignConfig::new(
            Name::parse("d1.dsav-mail.dns-lab.org").unwrap(),
            Name::parse("sel1").unwrap(),
        )
    }

    fn key_answer(kp: &RsaKeyPair, name: &Name) -> ResolveOutcome {
        let record_text = DkimKeyRecord::for_key(&kp.public).to_record_text();
        ResolveOutcome::Records(vec![Record::new(
            name.clone(),
            300,
            RData::txt_from_str(&record_text),
        )])
    }

    fn sign_and_attach(m: &mut MailMessage, cfg: &SignConfig, kp: &RsaKeyPair) {
        let value = sign_message(m, cfg, &kp.private).unwrap();
        m.prepend_header("DKIM-Signature", &value);
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = keypair();
        let mut m = sample_message();
        sign_and_attach(&mut m, &config(), &kp);
        let mut v = DkimVerifier::new(&m, 0);
        let VerifyStep::NeedKey { name, .. } = v.start() else {
            panic!("expected key lookup");
        };
        assert_eq!(
            name,
            Name::parse("sel1._domainkey.d1.dsav-mail.dns-lab.org").unwrap()
        );
        match v.on_key(key_answer(&kp, &name)) {
            VerifyStep::Done(DkimResult::Pass) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn roundtrip_all_canonicalizations() {
        let kp = keypair();
        for hc in [Canonicalization::Simple, Canonicalization::Relaxed] {
            for bc in [Canonicalization::Simple, Canonicalization::Relaxed] {
                let mut cfg = config();
                cfg.header_canon = hc;
                cfg.body_canon = bc;
                let mut m = sample_message();
                sign_and_attach(&mut m, &cfg, &kp);
                let mut v = DkimVerifier::new(&m, 0);
                let VerifyStep::NeedKey { name, .. } = v.start() else {
                    panic!()
                };
                match v.on_key(key_answer(&kp, &name)) {
                    VerifyStep::Done(DkimResult::Pass) => {}
                    other => panic!("{hc}/{bc}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn verify_survives_reparse_roundtrip() {
        // Transport the signed message through bytes, as SMTP would.
        let kp = keypair();
        let mut m = sample_message();
        sign_and_attach(&mut m, &config(), &kp);
        let reparsed = MailMessage::parse(&m.to_bytes()).unwrap();
        let mut v = DkimVerifier::new(&reparsed, 0);
        let VerifyStep::NeedKey { name, .. } = v.start() else {
            panic!()
        };
        match v.on_key(key_answer(&kp, &name)) {
            VerifyStep::Done(DkimResult::Pass) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn relaxed_tolerates_whitespace_churn() {
        let kp = keypair();
        let mut m = sample_message();
        sign_and_attach(&mut m, &config(), &kp);
        // An intermediary re-spaces a signed header (relaxed must survive).
        for h in &mut m.headers {
            if h.name.eq_ignore_ascii_case("subject") {
                h.raw_value = "  Network   notification".into();
            }
        }
        let mut v = DkimVerifier::new(&m, 0);
        let VerifyStep::NeedKey { name, .. } = v.start() else {
            panic!()
        };
        match v.on_key(key_answer(&kp, &name)) {
            VerifyStep::Done(DkimResult::Pass) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tampered_body_fails_bh() {
        let kp = keypair();
        let mut m = sample_message();
        sign_and_attach(&mut m, &config(), &kp);
        m.set_body_text("Entirely different body\n");
        let mut v = DkimVerifier::new(&m, 0);
        let VerifyStep::NeedKey { name, .. } = v.start() else {
            panic!()
        };
        match v.on_key(key_answer(&kp, &name)) {
            VerifyStep::Done(DkimResult::Fail(reason)) => {
                assert!(reason.contains("body hash"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tampered_signed_header_fails_signature() {
        let kp = keypair();
        let mut m = sample_message();
        sign_and_attach(&mut m, &config(), &kp);
        for h in &mut m.headers {
            if h.name.eq_ignore_ascii_case("from") {
                h.raw_value = " Spoofer <evil@attacker.test>".into();
            }
        }
        let mut v = DkimVerifier::new(&m, 0);
        let VerifyStep::NeedKey { name, .. } = v.start() else {
            panic!()
        };
        match v.on_key(key_answer(&kp, &name)) {
            VerifyStep::Done(DkimResult::Fail(reason)) => {
                assert!(reason.contains("signature"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unsigned_message_is_none() {
        let m = sample_message();
        let mut v = DkimVerifier::new(&m, 0);
        match v.start() {
            VerifyStep::Done(DkimResult::None) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn missing_key_is_permerror() {
        let kp = keypair();
        let mut m = sample_message();
        sign_and_attach(&mut m, &config(), &kp);
        let mut v = DkimVerifier::new(&m, 0);
        let VerifyStep::NeedKey { .. } = v.start() else {
            panic!()
        };
        match v.on_key(ResolveOutcome::NxDomain) {
            VerifyStep::Done(DkimResult::PermError(_)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn dns_failure_is_temperror() {
        let kp = keypair();
        let mut m = sample_message();
        sign_and_attach(&mut m, &config(), &kp);
        let mut v = DkimVerifier::new(&m, 0);
        let VerifyStep::NeedKey { .. } = v.start() else {
            panic!()
        };
        match v.on_key(ResolveOutcome::Timeout) {
            VerifyStep::Done(DkimResult::TempError) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn revoked_key_is_neutral() {
        let kp = keypair();
        let mut m = sample_message();
        sign_and_attach(&mut m, &config(), &kp);
        let mut v = DkimVerifier::new(&m, 0);
        let VerifyStep::NeedKey { name, .. } = v.start() else {
            panic!()
        };
        let revoked = ResolveOutcome::Records(vec![Record::new(
            name,
            300,
            RData::txt_from_str("v=DKIM1; k=rsa; p="),
        )]);
        match v.on_key(revoked) {
            VerifyStep::Done(DkimResult::Neutral(_)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wrong_key_fails() {
        let kp = keypair();
        let mut rng = SplitMix64::new(999);
        let other = RsaKeyPair::generate(512, &mut rng);
        let mut m = sample_message();
        sign_and_attach(&mut m, &config(), &kp);
        let mut v = DkimVerifier::new(&m, 0);
        let VerifyStep::NeedKey { name, .. } = v.start() else {
            panic!()
        };
        match v.on_key(key_answer(&other, &name)) {
            VerifyStep::Done(DkimResult::Fail(_)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multiple_signatures_independent() {
        let kp = keypair();
        let mut m = sample_message();
        sign_and_attach(&mut m, &config(), &kp);
        // Second (outer) signature from another domain.
        let mut cfg2 = config();
        cfg2.domain = Name::parse("relay.test").unwrap();
        cfg2.selector = Name::parse("r1").unwrap();
        sign_and_attach(&mut m, &cfg2, &kp);
        assert_eq!(DkimVerifier::signature_count(&m), 2);
        // Index 0 is the outer (prepended last).
        let mut v0 = DkimVerifier::new(&m, 0);
        let VerifyStep::NeedKey { name, .. } = v0.start() else {
            panic!()
        };
        assert_eq!(name, Name::parse("r1._domainkey.relay.test").unwrap());
        match v0.on_key(key_answer(&kp, &name)) {
            VerifyStep::Done(DkimResult::Pass) => {}
            other => panic!("{other:?}"),
        }
    }
}
