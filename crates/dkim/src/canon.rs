//! DKIM canonicalization (RFC 6376 §3.4).

use mailval_smtp::mail::HeaderField;

/// The two canonicalization algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Canonicalization {
    /// `simple`: tolerate almost no modification.
    Simple,
    /// `relaxed`: tolerate whitespace and header-case churn.
    Relaxed,
}

impl Canonicalization {
    /// Parse one side of the `c=` tag.
    pub fn parse(s: &str) -> Option<Canonicalization> {
        match s.to_ascii_lowercase().as_str() {
            "simple" => Some(Canonicalization::Simple),
            "relaxed" => Some(Canonicalization::Relaxed),
            _ => None,
        }
    }
}

impl std::fmt::Display for Canonicalization {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Canonicalization::Simple => write!(f, "simple"),
            Canonicalization::Relaxed => write!(f, "relaxed"),
        }
    }
}

/// Collapse runs of WSP to a single SP and drop trailing WSP.
fn relax_whitespace(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut in_wsp = false;
    for c in s.chars() {
        if c == ' ' || c == '\t' {
            in_wsp = true;
        } else {
            if in_wsp && !out.is_empty() {
                out.push(' ');
            }
            in_wsp = false;
            out.push(c);
        }
    }
    out
}

/// Canonicalize one header field (§3.4.1 / §3.4.2). The result includes
/// the trailing CRLF except for the `DKIM-Signature` header being signed,
/// which the caller handles specially.
pub fn canonicalize_header(canon: Canonicalization, field: &HeaderField) -> String {
    match canon {
        Canonicalization::Simple => format!("{}:{}\r\n", field.name, field.raw_value),
        Canonicalization::Relaxed => {
            let name = field.name.to_ascii_lowercase();
            // Unfold, then collapse WSP.
            let unfolded = mailval_smtp::mail::unfold(&field.raw_value);
            let value = relax_whitespace(unfolded.trim());
            format!("{name}:{value}\r\n")
        }
    }
}

/// Canonicalize a body (§3.4.3 / §3.4.4).
pub fn canonicalize_body(canon: Canonicalization, body: &[u8]) -> Vec<u8> {
    // Work line-by-line on CRLF-delimited text. Tolerate a body that does
    // not end in CRLF by treating the remainder as a final line.
    let mut lines: Vec<Vec<u8>> = Vec::new();
    let mut current = Vec::new();
    let mut iter = body.iter().peekable();
    while let Some(&b) = iter.next() {
        if b == b'\r' && iter.peek() == Some(&&b'\n') {
            iter.next();
            lines.push(std::mem::take(&mut current));
        } else {
            current.push(b);
        }
    }
    let had_trailing_fragment = !current.is_empty();
    if had_trailing_fragment {
        lines.push(current);
    }

    if canon == Canonicalization::Relaxed {
        for line in &mut lines {
            // Strip trailing WSP, collapse interior WSP runs.
            let s = String::from_utf8_lossy(line).into_owned();
            let mut relaxed = String::with_capacity(s.len());
            let mut wsp_run = false;
            for c in s.trim_end_matches([' ', '\t']).chars() {
                if c == ' ' || c == '\t' {
                    wsp_run = true;
                } else {
                    if wsp_run {
                        relaxed.push(' ');
                    }
                    wsp_run = false;
                    relaxed.push(c);
                }
            }
            *line = relaxed.into_bytes();
        }
    }

    // Drop trailing empty lines (both algorithms).
    while lines.last().is_some_and(|l| l.is_empty()) {
        lines.pop();
    }

    let mut out = Vec::with_capacity(body.len());
    for line in &lines {
        out.extend_from_slice(line);
        out.extend_from_slice(b"\r\n");
    }
    if out.is_empty() && canon == Canonicalization::Simple {
        // §3.4.3: an empty body canonicalizes to a single CRLF in simple.
        out.extend_from_slice(b"\r\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field(name: &str, raw: &str) -> HeaderField {
        HeaderField {
            name: name.into(),
            raw_value: raw.into(),
        }
    }

    // RFC 6376 §3.4.5 examples.
    #[test]
    fn rfc_example_relaxed() {
        let a = field("A", " X\r\n");
        // The RFC example input "A: X\r\n" -> relaxed "a:X\r\n".
        let a = HeaderField {
            name: a.name,
            raw_value: " X".into(),
        };
        assert_eq!(
            canonicalize_header(Canonicalization::Relaxed, &a),
            "a:X\r\n"
        );
        let b = field("B ", " Y\t\r\n\tZ  ");
        assert_eq!(
            canonicalize_header(Canonicalization::Relaxed, &b),
            "b :Y Z\r\n"
        );
    }

    #[test]
    fn rfc_example_relaxed_body() {
        let body = b" C \r\nD \t E\r\n\r\n\r\n";
        assert_eq!(
            canonicalize_body(Canonicalization::Relaxed, body),
            b" C\r\nD E\r\n".to_vec()
        );
    }

    #[test]
    fn rfc_example_simple_body() {
        let body = b" C \r\nD \t E\r\n\r\n\r\n";
        assert_eq!(
            canonicalize_body(Canonicalization::Simple, body),
            b" C \r\nD \t E\r\n".to_vec()
        );
    }

    #[test]
    fn simple_header_is_verbatim() {
        let h = field("From", " Alice <a@example.com>");
        assert_eq!(
            canonicalize_header(Canonicalization::Simple, &h),
            "From: Alice <a@example.com>\r\n"
        );
    }

    #[test]
    fn relaxed_header_unfolds() {
        let h = field("Subject", " folded\r\n  across\r\n\tlines ");
        assert_eq!(
            canonicalize_header(Canonicalization::Relaxed, &h),
            "subject:folded across lines\r\n"
        );
    }

    #[test]
    fn empty_body() {
        assert_eq!(canonicalize_body(Canonicalization::Simple, b""), b"\r\n");
        assert_eq!(
            canonicalize_body(Canonicalization::Relaxed, b""),
            Vec::<u8>::new()
        );
        // Only empty lines is equivalent to empty.
        assert_eq!(
            canonicalize_body(Canonicalization::Simple, b"\r\n\r\n"),
            b"\r\n".to_vec()
        );
    }

    #[test]
    fn body_without_trailing_crlf() {
        assert_eq!(
            canonicalize_body(Canonicalization::Simple, b"line"),
            b"line\r\n".to_vec()
        );
    }

    #[test]
    fn parse_and_display() {
        assert_eq!(
            Canonicalization::parse("RELAXED"),
            Some(Canonicalization::Relaxed)
        );
        assert_eq!(Canonicalization::parse("nope"), None);
        assert_eq!(Canonicalization::Simple.to_string(), "simple");
    }
}
