//! The DKIM signing pipeline (RFC 6376 §3.7, §5).

use crate::canon::{canonicalize_body, canonicalize_header, Canonicalization};
use crate::signature::DkimSignature;
use mailval_crypto::rsa::RsaPrivateKey;
use mailval_crypto::HashAlg;
use mailval_dns::Name;
use mailval_smtp::mail::{HeaderField, MailMessage};

/// Signing configuration.
#[derive(Debug, Clone)]
pub struct SignConfig {
    /// SDID (`d=`).
    pub domain: Name,
    /// Selector (`s=`).
    pub selector: Name,
    /// Hash algorithm (`a=rsa-<alg>`).
    pub algorithm: HashAlg,
    /// Header canonicalization.
    pub header_canon: Canonicalization,
    /// Body canonicalization.
    pub body_canon: Canonicalization,
    /// Headers to sign (must include `From`).
    pub signed_headers: Vec<String>,
    /// Optional signing timestamp (`t=`).
    pub timestamp: Option<u64>,
}

impl SignConfig {
    /// A sensible default configuration (relaxed/relaxed, rsa-sha256,
    /// From/To/Subject/Date/Message-ID signed) — what the paper's Exim4
    /// setup effectively used.
    pub fn new(domain: Name, selector: Name) -> SignConfig {
        SignConfig {
            domain,
            selector,
            algorithm: HashAlg::Sha256,
            header_canon: Canonicalization::Relaxed,
            body_canon: Canonicalization::Relaxed,
            signed_headers: vec![
                "From".into(),
                "To".into(),
                "Subject".into(),
                "Date".into(),
                "Message-ID".into(),
                "Reply-To".into(),
            ],
            timestamp: None,
        }
    }
}

/// Signing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SignError {
    /// The message has no `From` header (unsignable).
    NoFrom,
    /// RSA failure (key too small for the digest).
    Rsa(String),
}

impl std::fmt::Display for SignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SignError::NoFrom => write!(f, "message has no From header"),
            SignError::Rsa(e) => write!(f, "rsa failure: {e}"),
        }
    }
}

impl std::error::Error for SignError {}

/// Select header instances for `h=` (§5.4.2): for each listed name, take
/// instances from the *bottom* of the header block upward; names listed
/// more times than they occur select nothing for the excess ("over-
/// signing"). Returns the canonicalized header text in signing order.
pub fn select_headers<'a>(
    headers: &'a [HeaderField],
    signed: &[String],
) -> Vec<Option<&'a HeaderField>> {
    let mut used = vec![false; headers.len()];
    let mut out = Vec::with_capacity(signed.len());
    for name in signed {
        let mut found = None;
        for (i, h) in headers.iter().enumerate().rev() {
            if !used[i] && h.name.eq_ignore_ascii_case(name) {
                used[i] = true;
                found = Some(h);
                break;
            }
        }
        out.push(found);
    }
    out
}

/// Compute the data hash input (§3.7): canonicalized selected headers,
/// then the canonicalized DKIM-Signature header with empty `b=` and no
/// trailing CRLF.
///
/// `sig_raw_value` must be the *raw header value* (everything after the
/// colon, leading whitespace included) so that `simple` canonicalization
/// hashes the same bytes on the signing and verifying sides.
fn data_hash_input(
    message_headers: &[HeaderField],
    sig_raw_value: &str,
    header_canon: Canonicalization,
    signed: &[String],
) -> Vec<u8> {
    let mut input = Vec::new();
    for header in select_headers(message_headers, signed)
        .into_iter()
        .flatten()
    {
        input.extend_from_slice(canonicalize_header(header_canon, header).as_bytes());
    }
    let sig_field = HeaderField {
        name: "DKIM-Signature".into(),
        raw_value: sig_raw_value.to_string(),
    };
    let canon_sig = canonicalize_header(header_canon, &sig_field);
    // No trailing CRLF on the signature header itself.
    let trimmed = canon_sig
        .strip_suffix("\r\n")
        .unwrap_or(&canon_sig)
        .as_bytes();
    input.extend_from_slice(trimmed);
    input
}

/// Sign `message`, returning the `DKIM-Signature` header *value* to
/// prepend. The message itself is not modified.
pub fn sign_message(
    message: &MailMessage,
    config: &SignConfig,
    key: &RsaPrivateKey,
) -> Result<String, SignError> {
    if message.header("from").is_none()
        || !config
            .signed_headers
            .iter()
            .any(|h| h.eq_ignore_ascii_case("from"))
    {
        return Err(SignError::NoFrom);
    }
    let canon_body = canonicalize_body(config.body_canon, &message.body);
    let body_hash = config.algorithm.digest(&canon_body);

    let sig = DkimSignature {
        algorithm: config.algorithm,
        signature: Vec::new(),
        body_hash,
        header_canon: config.header_canon,
        body_canon: config.body_canon,
        domain: config.domain.clone(),
        selector: config.selector.clone(),
        identity: None,
        body_length: None,
        timestamp: config.timestamp,
        expiration: None,
        signed_headers: config
            .signed_headers
            .iter()
            .map(|h| h.to_ascii_lowercase())
            .collect(),
    };

    // The header will be attached as "DKIM-Signature: <value>", i.e. with
    // a single leading space in the raw value; hash exactly that.
    let unsigned_value = format!(" {}", sig.to_header_value(""));
    let input = data_hash_input(
        &message.headers,
        &unsigned_value,
        config.header_canon,
        &sig.signed_headers,
    );
    let digest = config.algorithm.digest(&input);
    let signature = key
        .sign_digest(config.algorithm, &digest)
        .map_err(|e| SignError::Rsa(e.to_string()))?;
    Ok(sig.to_header_value(&mailval_crypto::base64::encode(&signature)))
}

/// Recompute the data-hash digest for verification of a *parsed*
/// signature against a message. Exposed for the verifier.
pub fn verification_digest(
    message: &MailMessage,
    sig: &DkimSignature,
    raw_sig_value: &str,
) -> Vec<u8> {
    // Reconstruct the signed header value with b= emptied but everything
    // else byte-identical to what arrived (§3.7: remove the b= value from
    // the header as received).
    let stripped = strip_b_value(raw_sig_value);
    let input = data_hash_input(
        &message.headers,
        &stripped,
        sig.header_canon,
        &sig.signed_headers,
    );
    sig.algorithm.digest(&input)
}

/// Remove the value of the `b=` tag while keeping everything else
/// byte-for-byte (§3.7 step 2).
pub fn strip_b_value(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    loop {
        // Find a `b` tag at a tag boundary.
        let Some(pos) = rest.find('b') else {
            out.push_str(rest);
            return out;
        };
        let (before, after) = rest.split_at(pos);
        // A tag name starts at the beginning or after ';' + optional FWS.
        let at_boundary = before
            .trim_end_matches([' ', '\t', '\r', '\n'])
            .ends_with(';')
            || before.trim().is_empty();
        let after_tag = &after[1..];
        let is_b_tag = at_boundary
            && after_tag
                .trim_start_matches([' ', '\t', '\r', '\n'])
                .starts_with('=');
        if !is_b_tag {
            out.push_str(before);
            out.push('b');
            rest = after_tag;
            continue;
        }
        out.push_str(before);
        out.push('b');
        let eq_rel = after_tag.find('=').expect("checked above");
        out.push_str(&after_tag[..=eq_rel]);
        // Skip the value up to the next ';' or end.
        let value_rest = &after_tag[eq_rel + 1..];
        match value_rest.find(';') {
            Some(semi) => {
                rest = &value_rest[semi..];
            }
            None => {
                return out;
            }
        }
    }
}

/// Compute and compare the body hash (§3.7 step 1).
pub fn body_hash_matches(message: &MailMessage, sig: &DkimSignature) -> bool {
    let mut canon = canonicalize_body(sig.body_canon, &message.body);
    if let Some(l) = sig.body_length {
        let l = l as usize;
        if l > canon.len() {
            return false;
        }
        canon.truncate(l);
    }
    sig.algorithm.digest(&canon) == sig.body_hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_b_value_basic() {
        assert_eq!(strip_b_value("v=1; bh=XYZ; b=ABCDEF"), "v=1; bh=XYZ; b=");
        assert_eq!(strip_b_value("v=1; b=ABC; d=x.test"), "v=1; b=; d=x.test");
        // bh= must not be stripped.
        assert_eq!(strip_b_value("bh=KEEP; b=GO"), "bh=KEEP; b=");
        // Folded b= value.
        assert_eq!(strip_b_value("v=1; b=abc\r\n\tdef; d=x"), "v=1; b=; d=x");
    }

    #[test]
    fn select_headers_bottom_up() {
        let headers = vec![
            HeaderField::new("Received", "hop1"),
            HeaderField::new("From", "first@x.test"),
            HeaderField::new("Subject", "s"),
            HeaderField::new("From", "second@x.test"),
        ];
        let selected = select_headers(&headers, &["from".into(), "from".into(), "from".into()]);
        assert_eq!(selected[0].unwrap().value(), "second@x.test");
        assert_eq!(selected[1].unwrap().value(), "first@x.test");
        assert!(selected[2].is_none(), "over-signed slot selects nothing");
    }
}
