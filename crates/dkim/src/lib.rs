//! # mailval-dkim
//!
//! DomainKeys Identified Mail (RFC 6376), from scratch:
//!
//! * [`canon`] — `simple` and `relaxed` canonicalization for headers and
//!   bodies (§3.4).
//! * [`taglist`] — the `tag=value` list syntax shared by signature
//!   headers and key records (§3.2).
//! * [`signature`] — the `DKIM-Signature` header (§3.5): parse,
//!   serialize, header selection semantics.
//! * [`key`] — the DNS key record published at
//!   `<selector>._domainkey.<domain>` (§3.6.1).
//! * [`sign`] — the signing pipeline: body hash, data hash, RSA.
//! * [`verify`] — a **resumable verifier**: it yields the key-record DNS
//!   question and is resumed with the answer, so the embedding MTA can
//!   run it through whatever resolver it has. The DNS query it emits is
//!   precisely what the paper's apparatus observes to classify an MTA as
//!   DKIM-validating (§6).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod canon;
pub mod key;
pub mod sign;
pub mod signature;
pub mod taglist;
pub mod verify;

pub use canon::Canonicalization;
pub use key::DkimKeyRecord;
pub use sign::{sign_message, SignConfig};
pub use signature::DkimSignature;
pub use verify::{DkimResult, DkimVerifier, VerifyStep};
