//! Telemetry determinism: trace event streams must be byte-identical
//! across repeated runs and every shard count, metrics registries must
//! merge to the same totals at shards 1/2/4/8, and a kill-and-resume
//! run must trace exactly the sessions it actually simulated (replayed
//! journal frames carry no telemetry, by design).

use mailval::datasets::{DatasetKind, Population, PopulationConfig};
use mailval::measure::campaign::{
    run_campaign, sample_host_profiles, CampaignConfig, CampaignKind, TelemetryConfig,
};
use mailval::measure::telemetry::{chrome_trace_json, metrics_json, Telemetry, TraceFilter};
use mailval::mta::profile::MtaProfile;
use std::collections::HashSet;
use std::path::PathBuf;

fn fixture(seed: u64) -> (Population, Vec<MtaProfile>) {
    let pop = Population::generate(&PopulationConfig {
        kind: DatasetKind::NotifyEmail,
        scale: 0.004,
        seed,
    });
    let profiles = sample_host_profiles(&pop, seed);
    (pop, profiles)
}

fn traced_config(seed: u64, shards: usize) -> CampaignConfig {
    CampaignConfig {
        kind: CampaignKind::NotifyEmail,
        tests: vec![],
        seed,
        probe_pause_ms: 0,
        shards,
        telemetry: TelemetryConfig {
            tracing: true,
            heartbeat_ms: 0,
        },
        ..CampaignConfig::default()
    }
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mailval-telemetry-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn trace_stream_identical_across_shard_counts_and_repeats() {
    let (pop, profiles) = fixture(41);
    let reference: Telemetry = run_campaign(&traced_config(41, 1), &pop, &profiles)
        .telemetry
        .expect("tracing on");
    assert!(
        reference.events.len() > 100,
        "fixture traced too few events ({})",
        reference.events.len()
    );
    // The stream holds the full vocabulary's load-bearing kinds.
    let labels: HashSet<&'static str> = reference.events.iter().map(|e| e.kind.label()).collect();
    for expected in [
        "session_start",
        "session_end",
        "smtp_command",
        "smtp_reply",
        "resolve_start",
        "resolve_done",
        "dns_send",
        "dns_recv",
        "client_close",
    ] {
        assert!(labels.contains(expected), "no {expected} event traced");
    }

    let filter = TraceFilter::default();
    let reference_json = chrome_trace_json(&reference.events, &filter);
    let reference_metrics = metrics_json(&reference.metrics);
    assert!(reference_json.contains("\"traceEvents\""));

    // Repeated run at the same shard count: byte-identical.
    let again = run_campaign(&traced_config(41, 1), &pop, &profiles)
        .telemetry
        .expect("tracing on");
    assert_eq!(reference.events, again.events, "repeat run diverged");

    // Every shard count merges to the identical stream and registry.
    for shards in [2usize, 4, 8] {
        let t = run_campaign(&traced_config(41, shards), &pop, &profiles)
            .telemetry
            .expect("tracing on");
        assert_eq!(
            reference.events, t.events,
            "trace stream diverged at shards={shards}"
        );
        assert_eq!(
            reference.metrics, t.metrics,
            "metrics registry diverged at shards={shards}"
        );
        assert_eq!(
            reference_json,
            chrome_trace_json(&t.events, &filter),
            "chrome export diverged at shards={shards}"
        );
        assert_eq!(
            reference_metrics,
            metrics_json(&t.metrics),
            "metrics export diverged at shards={shards}"
        );
    }
}

#[test]
fn metrics_totals_are_consistent_with_the_result() {
    let (pop, profiles) = fixture(41);
    let result = run_campaign(&traced_config(41, 4), &pop, &profiles);
    let telemetry = result.telemetry.as_ref().expect("tracing on");
    let m = &telemetry.metrics;
    assert_eq!(
        m.counters.get("sessions").copied().unwrap_or(0),
        result.sessions.len() as u64,
        "traced session count disagrees with the session records"
    );
    let delivered = result
        .sessions
        .iter()
        .filter(|s| s.delivery_time_ms.is_some())
        .count() as u64;
    assert_eq!(
        m.counters.get("deliveries").copied().unwrap_or(0),
        delivered,
        "traced deliveries disagree with delivery timestamps"
    );
    // Every upstream query the apparatus logged was traced as a send.
    assert!(
        m.counters.get("dns_sends").copied().unwrap_or(0) >= result.log.records.len() as u64,
        "fewer dns_send events than logged queries"
    );
    assert!(m.histograms.contains_key("session_ms"));
    assert!(m.histograms.contains_key("dns_lookup_ms"));
    assert!(m.cache_hit_rate().is_some(), "no cache hit-rate derivable");
}

#[test]
fn session_and_shard_filters_restrict_the_export() {
    let (pop, profiles) = fixture(41);
    let telemetry = run_campaign(&traced_config(41, 1), &pop, &profiles)
        .telemetry
        .expect("tracing on");
    let some_session = telemetry.events[0].session;
    let one = TraceFilter {
        sessions: vec![some_session],
        shard: None,
    };
    let json = chrome_trace_json(&telemetry.events, &one);
    // Every tid in the filtered export is the selected session.
    for line in json.lines() {
        if let Some(pos) = line.find("\"tid\": ") {
            let rest = &line[pos + 7..];
            let end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            assert_eq!(
                rest[..end].parse::<usize>().unwrap(),
                some_session,
                "foreign session leaked through the filter"
            );
        }
    }
    // A shard filter keeps a strict, non-empty subset.
    let sharded = TraceFilter {
        sessions: vec![],
        shard: Some((0, 2)),
    };
    let kept: Vec<_> = telemetry
        .events
        .iter()
        .filter(|e| sharded.keeps(e.session))
        .collect();
    assert!(!kept.is_empty());
    assert!(kept.len() < telemetry.events.len());
    assert!(kept.iter().all(|e| e.session % 2 == 0));
}

#[test]
fn resumed_run_traces_exactly_the_simulated_sessions() {
    let (pop, profiles) = fixture(47);
    let clean = run_campaign(&traced_config(47, 2), &pop, &profiles);
    let clean_t = clean.telemetry.as_ref().expect("tracing on");
    assert!(clean.sessions.len() > 20, "fixture too small to crash");

    // Both shards crash after durably journaling 5 sessions; the
    // supervisor restarts them from journal. Replayed sessions emit no
    // trace, so the resumed run's telemetry covers exactly the
    // sessions simulated after the restart.
    let dir = scratch_dir("kill");
    let mut config = traced_config(47, 2);
    config.journal_dir = Some(dir.clone());
    config.faults.crash_after_sessions = 5;
    let resumed = run_campaign(&config, &pop, &profiles);
    assert!(!resumed.partial);
    // The deterministic output is still byte-identical...
    assert_eq!(clean.content_hash(), resumed.content_hash());

    let resumed_t = resumed.telemetry.as_ref().expect("tracing on");
    let traced: HashSet<usize> = resumed_t.events.iter().map(|e| e.session).collect();
    let all: HashSet<usize> = clean_t.events.iter().map(|e| e.session).collect();
    assert_eq!(
        all.len() - traced.len(),
        10,
        "2 shards x 5 replayed sessions must be missing from the resumed trace"
    );
    assert!(traced.is_subset(&all));
    // ...and the traced remainder matches the clean run event-for-event.
    let filtered: Vec<_> = clean_t
        .events
        .iter()
        .filter(|e| traced.contains(&e.session))
        .cloned()
        .collect();
    assert_eq!(
        filtered, resumed_t.events,
        "resumed trace diverged from the clean run on the simulated sessions"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn untraced_run_carries_no_telemetry() {
    let (pop, profiles) = fixture(41);
    let mut config = traced_config(41, 1);
    config.telemetry = TelemetryConfig::default();
    let result = run_campaign(&config, &pop, &profiles);
    assert!(result.telemetry.is_none());
}
