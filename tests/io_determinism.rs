//! Storage-fault determinism: a campaign run under an **active IO
//! fault plan** — disk-full (ENOSPC), short writes, fsync and rename
//! failures, read corruption — must complete without a panic and merge
//! to output **byte-identical** to a fault-free run, for every shard
//! count and across kill-and-resume. IO faults may cost durability
//! (journals demote, store saves fail) but never results; every
//! degradation must be visible in counters, never silent.
//!
//! The memory-backpressure tests pin the complementary property: the
//! engine's per-session [`MemoryBudget`] IS result-determining (shed
//! sessions terminate as `ResourceShed`), and its decisions are
//! shard- and resume-invariant.

use mailval::datasets::{DatasetKind, Population, PopulationConfig};
use mailval::measure::campaign::{
    run_campaign, sample_host_profiles, CampaignConfig, CampaignKind, CampaignResult,
    SupervisorConfig,
};
use mailval::measure::engine::{MemoryBudget, SessionOutcome};
use mailval::measure::store::{CampaignStore, KeySpec, StoreError};
use mailval::measure::vfs::SimFs;
use mailval::measure::{journal, vfs};
use mailval::mta::profile::MtaProfile;
use mailval::simnet::{IoConfig, IoPlan};
use std::path::PathBuf;
use std::sync::Arc;

fn tiny_pop(seed: u64) -> Population {
    Population::generate(&PopulationConfig {
        kind: DatasetKind::NotifyEmail,
        scale: 0.004,
        seed,
    })
}

fn base_config(shards: usize) -> CampaignConfig {
    CampaignConfig {
        kind: CampaignKind::NotifyEmail,
        tests: vec![],
        seed: 73,
        probe_pause_ms: 0,
        shards,
        ..CampaignConfig::default()
    }
}

/// An aggressive IO fault plan: every injection site fires, including
/// a disk that fills after 2 KiB per file.
fn hostile_io() -> IoConfig {
    IoConfig {
        enospc_after_bytes: 2_048,
        short_write_probability: 0.10,
        fsync_fail_probability: 0.20,
        rename_fail_probability: 0.20,
        read_corrupt_probability: 0.10,
        seed: 0x0010_C0DE,
    }
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mailval-io-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fixture(seed: u64) -> (Population, Vec<MtaProfile>) {
    let pop = tiny_pop(seed);
    let profiles = sample_host_profiles(&pop, seed);
    (pop, profiles)
}

fn assert_identical(a: &CampaignResult, b: &CampaignResult, label: &str) {
    assert_eq!(a.events, b.events, "event counts differ ({label})");
    assert_eq!(a.faults, b.faults, "fault counters differ ({label})");
    assert_eq!(a.sessions, b.sessions, "session records diverged ({label})");
    assert_eq!(a.log.records, b.log.records, "query log diverged ({label})");
    assert_eq!(
        a.content_hash(),
        b.content_hash(),
        "content hashes differ ({label})"
    );
}

#[test]
fn hostile_io_plan_never_changes_the_merged_output() {
    let (pop, profiles) = fixture(73);
    let clean = run_campaign(&base_config(1), &pop, &profiles);
    assert!(!clean.partial);
    assert!(clean.sessions.len() > 40, "fixture too small");

    for shards in [1usize, 2, 4, 8] {
        let dir = scratch_dir(&format!("hostile-{shards}"));
        let mut config = base_config(shards);
        config.journal_dir = Some(dir.clone());
        config.io = hostile_io();
        let faulted = run_campaign(&config, &pop, &profiles);
        assert!(!faulted.partial, "shards={shards}");
        assert_identical(&clean, &faulted, &format!("shards={shards}"));
        // The 2 KiB disk cannot hold a full shard journal: the
        // degradation must be visible, not silent.
        assert!(
            faulted.shard_stats.iter().any(|s| s.durability_lost),
            "no shard reported durability loss under ENOSPC (shards={shards})"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn enospc_mid_frame_salvages_the_exact_journal_prefix() {
    let (pop, profiles) = fixture(79);
    let dir = scratch_dir("salvage");
    let mut config = base_config(2);
    config.journal_dir = Some(dir.clone());
    config.io = IoConfig {
        enospc_after_bytes: 4_096,
        ..IoConfig::default()
    };
    let result = run_campaign(&config, &pop, &profiles);
    assert!(!result.partial);
    assert!(
        result.shard_stats.iter().all(|s| s.durability_lost),
        "a 4 KiB disk must demote every shard journal"
    );

    // Each journal must replay to a clean prefix: zero or more intact
    // frames whose records agree session-for-session with the merged
    // result, with the torn ENOSPC frame dropped by the CRC check.
    let mut salvaged_total = 0usize;
    for k in 0..2 {
        let path = journal::shard_journal_path(&dir, k);
        let replay = journal::replay(&path);
        assert!(
            replay.frames.len() < result.sessions.len() / 2,
            "shard {k}: the full shard cannot have fit in 4 KiB"
        );
        for frame in &replay.frames {
            let reference = result
                .sessions
                .iter()
                .find(|s| s.session_id == frame.record.session_id)
                .expect("salvaged session exists in the merged result");
            assert_eq!(&frame.record, reference, "salvaged frame diverged");
        }
        salvaged_total += replay.frames.len();
    }
    assert!(
        salvaged_total > 0,
        "nothing at all was journaled before ENOSPC"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_and_resume_under_io_faults_is_byte_identical() {
    let (pop, profiles) = fixture(83);
    let clean = run_campaign(&base_config(2), &pop, &profiles);
    let dir = scratch_dir("resume");

    // Phase 1: shards crash after 5 completed sessions with a zero
    // restart budget, on a disk that fails fsyncs and corrupts reads.
    // The run finalizes partial from whatever journaled durably.
    let mut crashed = base_config(2);
    crashed.journal_dir = Some(dir.clone());
    crashed.faults.crash_after_sessions = 5;
    crashed.supervisor = SupervisorConfig {
        max_shard_restarts: 0,
        ..SupervisorConfig::default()
    };
    crashed.io = IoConfig {
        fsync_fail_probability: 0.25,
        read_corrupt_probability: 0.10,
        seed: 0xDEAD_D15C,
        ..IoConfig::default()
    };
    let partial = run_campaign(&crashed, &pop, &profiles);
    assert!(partial.partial, "restart budget 0 must finalize partial");
    // Whatever survived agrees with the clean run session-for-session
    // (read corruption may have shortened the salvaged prefix; it must
    // never have changed it).
    for s in &partial.sessions {
        let reference = clean
            .sessions
            .iter()
            .find(|c| c.session_id == s.session_id)
            .expect("salvaged session exists in clean run");
        assert_eq!(s, reference, "salvaged session diverged");
    }

    // Phase 2: resume from the same journals under the same IO faults,
    // crash disarmed. Corrupted journal reads only force re-runs, so
    // the completed campaign is byte-identical to the clean one.
    let mut resume = crashed.clone();
    resume.resume = true;
    resume.faults.crash_after_sessions = 0;
    resume.supervisor = SupervisorConfig::default();
    let finished = run_campaign(&resume, &pop, &profiles);
    assert!(!finished.partial);
    assert_identical(&clean, &finished, "io-fault resume");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failed_store_rename_degrades_to_a_clean_miss_without_residue() {
    let (pop, profiles) = fixture(89);
    let config = base_config(1);
    let result = run_campaign(&config, &pop, &profiles);
    let root = scratch_dir("store-rename");
    let store = CampaignStore::new_with_vfs(
        root.clone(),
        Arc::new(SimFs::new(IoPlan::new(IoConfig {
            rename_fail_probability: 1.0,
            seed: 0x2E4A,
            ..IoConfig::default()
        }))),
    );
    let key = KeySpec {
        config: &config,
        dataset: "NotifyEmail",
        scale: 0.004,
        population_seed: 73,
        profiles: "io",
    }
    .key();
    // Save fails cleanly (the rename always fails) ...
    assert!(store.save(&key, &result).is_err());
    // ... leaves no temporary residue behind ...
    let leftovers: Vec<_> = std::fs::read_dir(&root)
        .map(|d| d.filter_map(|e| e.ok().map(|e| e.path())).collect())
        .unwrap_or_default();
    assert!(
        leftovers.is_empty(),
        "residue after failed save: {leftovers:?}"
    );
    // ... and the key reads back as an ordinary cold miss.
    assert!(matches!(store.load(&key), Err(StoreError::Missing)));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn zero_rate_io_config_is_provably_inert() {
    // A config whose every rate is zero (even with a nonzero seed) must
    // not activate the fault plan at all ...
    let zeroed = IoConfig {
        seed: 0xFEED_FACE,
        ..IoConfig::default()
    };
    assert!(!IoPlan::new(zeroed.clone()).is_active());
    assert!(!IoPlan::new(IoConfig::default()).is_active());

    // ... and a campaign run with it writes byte-identical journals and
    // produces a byte-identical result (the golden digests pinned in
    // golden_determinism.rs cover the default config at full depth;
    // this pins the SimFs-vs-OsFs seam itself).
    let (pop, profiles) = fixture(97);
    let dir_os = scratch_dir("inert-os");
    let dir_sim = scratch_dir("inert-sim");
    let mut on_os = base_config(2);
    on_os.journal_dir = Some(dir_os.clone());
    let mut on_sim = on_os.clone();
    on_sim.journal_dir = Some(dir_sim.clone());
    on_sim.io = zeroed;
    let a = run_campaign(&on_os, &pop, &profiles);
    let b = run_campaign(&on_sim, &pop, &profiles);
    assert_identical(&a, &b, "zero-rate io");
    assert!(b.shard_stats.iter().all(|s| !s.durability_lost));
    for k in 0..2 {
        let x = std::fs::read(journal::shard_journal_path(&dir_os, k)).expect("os journal");
        let y = std::fs::read(journal::shard_journal_path(&dir_sim, k)).expect("sim journal");
        assert_eq!(x, y, "shard {k}: journals must be byte-identical");
    }
    let _ = std::fs::remove_dir_all(&dir_os);
    let _ = std::fs::remove_dir_all(&dir_sim);
}

#[test]
fn memory_backpressure_sheds_deterministically_across_shards() {
    let (pop, profiles) = fixture(101);
    let unlimited = run_campaign(&base_config(1), &pop, &profiles);
    assert_eq!(unlimited.faults.resource_shed, 0);

    let make = |shards: usize| {
        let mut c = base_config(shards);
        c.memory = MemoryBudget {
            max_pending_events: 2,
            ..MemoryBudget::default()
        };
        c
    };
    let single = run_campaign(&make(1), &pop, &profiles);
    assert!(
        single.faults.resource_shed > 0,
        "a 2-pending-event budget must shed some sessions"
    );
    assert!(
        single.faults.resource_shed < single.sessions.len() as u64,
        "budget shed everything; the fixture cannot distinguish sessions"
    );
    // Every shed is visible: counter and termination records agree.
    let shed_records = single
        .sessions
        .iter()
        .filter(|s| matches!(s.termination, SessionOutcome::ResourceShed { .. }))
        .count() as u64;
    assert_eq!(shed_records, single.faults.resource_shed);
    for s in &single.sessions {
        if let SessionOutcome::ResourceShed { pending_events, .. } = s.termination {
            assert!(pending_events > 2, "shed below the configured budget");
        }
    }
    // Shedding is result-determining: the digest must move.
    assert_ne!(single.content_hash(), unlimited.content_hash());

    // And shard-invariant: the same sessions are shed at every count.
    for shards in [2usize, 4, 8] {
        let sharded = run_campaign(&make(shards), &pop, &profiles);
        assert_identical(&single, &sharded, &format!("memory shards={shards}"));
    }
}

#[test]
fn memory_backpressure_survives_kill_and_resume() {
    let (pop, profiles) = fixture(103);
    let make = || {
        let mut c = base_config(2);
        c.memory = MemoryBudget {
            max_pending_events: 2,
            ..MemoryBudget::default()
        };
        c
    };
    let clean = run_campaign(&make(), &pop, &profiles);
    assert!(clean.faults.resource_shed > 0, "budget inert in fixture");

    let dir = scratch_dir("memory-resume");
    let mut config = make();
    config.journal_dir = Some(dir.clone());
    config.faults.crash_after_sessions = 4;
    let resumed = run_campaign(&config, &pop, &profiles);
    assert!(!resumed.partial);
    assert_identical(&clean, &resumed, "memory kill-and-resume");
    let _ = std::fs::remove_dir_all(&dir);
}

// Quiet-but-used import check: `vfs::stable_file_id` keys SimFs fault
// streams by file *name*, which is what makes the journal fault
// sequence identical across scratch directories and resumed processes.
#[test]
fn fault_streams_are_keyed_by_name_not_path() {
    let a = vfs::stable_file_id(std::path::Path::new("/tmp/run-1/shard-0000.jrnl"));
    let b = vfs::stable_file_id(std::path::Path::new("/var/other/shard-0000.jrnl"));
    let c = vfs::stable_file_id(std::path::Path::new("/tmp/run-1/shard-0001.jrnl"));
    assert_eq!(a, b, "same name must map to the same fault stream");
    assert_ne!(a, c, "different shards must get independent streams");
}
