//! Sharded execution must be invisible in the output: a campaign run
//! with `shards = 4` has to produce the exact same merged query log
//! (same records, same order), the same session records, and therefore
//! the same analysis tables as the single-threaded `shards = 1` run.

use mailval::datasets::{DatasetKind, Population, PopulationConfig};
use mailval::measure::analysis::{notify_email_flags, probe_validating_counts, table4};
use mailval::measure::campaign::{
    run_campaign, sample_host_profiles, CampaignConfig, CampaignKind, CampaignResult,
};
use mailval::simnet::LatencyModel;

fn run(
    kind: CampaignKind,
    tests: Vec<&'static str>,
    shards: usize,
    pop: &Population,
) -> CampaignResult {
    let profiles = sample_host_profiles(pop, 77);
    run_campaign(
        &CampaignConfig {
            kind,
            tests,
            seed: 77,
            probe_pause_ms: 15_000,
            latency: LatencyModel::default(),
            shards,
            faults: mailval::simnet::FaultConfig::default(),
            ..CampaignConfig::default()
        },
        pop,
        &profiles,
    )
}

fn assert_identical(a: &CampaignResult, b: &CampaignResult) {
    assert_eq!(a.events, b.events, "event counts differ");
    assert_eq!(a.log.records.len(), b.log.records.len());
    for (x, y) in a.log.records.iter().zip(&b.log.records) {
        assert_eq!(x, y, "query log diverged");
    }
    assert_eq!(a.sessions.len(), b.sessions.len());
    for (x, y) in a.sessions.iter().zip(&b.sessions) {
        assert_eq!(x, y, "session records diverged");
    }
}

#[test]
fn four_shard_notify_email_is_byte_identical_and_tables_match() {
    let pop = Population::generate(&PopulationConfig {
        kind: DatasetKind::NotifyEmail,
        scale: 0.01,
        seed: 77,
    });
    let single = run(CampaignKind::NotifyEmail, vec![], 1, &pop);
    let sharded = run(CampaignKind::NotifyEmail, vec![], 4, &pop);
    assert_eq!(sharded.shard_stats.len(), 4);
    assert_identical(&single, &sharded);

    // Table 4 is a pure function of the merged output, so it has to
    // agree row by row.
    let flags_1 = notify_email_flags(&single, pop.domains.len());
    let flags_4 = notify_email_flags(&sharded, pop.domains.len());
    assert_eq!(flags_1, flags_4);
    assert_eq!(table4(&flags_1), table4(&flags_4));
}

#[test]
fn four_shard_probe_campaign_matches_table5_counts() {
    let pop = Population::generate(&PopulationConfig {
        kind: DatasetKind::NotifyEmail,
        scale: 0.008,
        seed: 77,
    });
    let single = run(CampaignKind::NotifyMx, vec!["t01", "t12"], 1, &pop);
    let sharded = run(CampaignKind::NotifyMx, vec!["t01", "t12"], 4, &pop);
    assert_identical(&single, &sharded);

    // Table 5 (validating counts) from both runs.
    let counts_1 = probe_validating_counts(&single, &pop);
    let counts_4 = probe_validating_counts(&sharded, &pop);
    assert_eq!(counts_1, counts_4);
}

#[test]
fn shard_stats_partition_the_work() {
    let pop = Population::generate(&PopulationConfig {
        kind: DatasetKind::NotifyEmail,
        scale: 0.01,
        seed: 77,
    });
    let result = run(CampaignKind::NotifyMx, vec!["t01"], 3, &pop);
    assert_eq!(result.shard_stats.len(), 3);
    let sessions: usize = result.shard_stats.iter().map(|s| s.sessions).sum();
    assert_eq!(sessions, result.sessions.len());
    let events: u64 = result.shard_stats.iter().map(|s| s.events).sum();
    assert_eq!(events, result.events);
    let queries: u64 = result.shard_stats.iter().map(|s| s.queries_logged).sum();
    assert_eq!(queries, result.log.records.len() as u64);
}
