//! The fault-injection layer must not disturb shard determinism: a
//! campaign run under a lossy network, flaky MTAs (greylisting, stalls,
//! resets) and even a mid-dialogue MTA crash has to produce the exact
//! same merged output — session records, query log, fault counters —
//! for any shard count. Fault decisions hash stable per-session
//! identifiers instead of drawing from an event-ordered RNG, so the
//! injected faults themselves are part of the deterministic output.

use mailval::datasets::{DatasetKind, Population, PopulationConfig};
use mailval::measure::campaign::{
    run_campaign, sample_host_profiles, CampaignConfig, CampaignKind, CampaignResult,
};
use mailval::mta::profile::MtaProfile;
use mailval::simnet::{FaultConfig, LatencyModel};

/// A fault plan that exercises every injection site: 5% datagram loss,
/// plus truncation, duplication, reordering, connection resets and
/// stalls at low-but-nonzero rates.
fn chaos_faults() -> FaultConfig {
    FaultConfig {
        duplicate_probability: 0.05,
        reorder_probability: 0.05,
        reorder_delay_ms: 40,
        truncate_probability: 0.05,
        conn_reset_probability: 0.02,
        conn_stall_probability: 0.05,
        conn_stall_ms: 200,
        seed: 0xC0FFEE,
        ..Default::default()
    }
}

fn chaos_config(shards: usize) -> CampaignConfig {
    let latency = LatencyModel {
        loss_probability: 0.05,
        ..LatencyModel::default()
    };
    CampaignConfig {
        kind: CampaignKind::NotifyEmail,
        tests: vec![],
        seed: 41,
        probe_pause_ms: 0,
        latency,
        shards,
        faults: chaos_faults(),
        ..CampaignConfig::default()
    }
}

/// Population + profiles with every chaos knob turned on: all hosts
/// greylist, a few stall before MAIL, and exactly one first-choice host
/// is poisoned to crash its MTA mid-dialogue.
fn chaos_fixture() -> (Population, Vec<MtaProfile>) {
    let pop = Population::generate(&PopulationConfig {
        kind: DatasetKind::NotifyEmail,
        scale: 0.004,
        seed: 41,
    });
    let mut profiles = sample_host_profiles(&pop, 41);
    for (i, p) in profiles.iter_mut().enumerate() {
        p.greylists = true;
        if i % 7 == 0 {
            p.stall_at_mail_ms = 500;
        }
    }
    let poisoned = solo_first_host(&pop).expect("population has a single-use host");
    profiles[poisoned].poison = true;
    (pop, profiles)
}

/// A host index that is the *first* MX of exactly one domain, so
/// poisoning it affects exactly one NotifyEmail session.
fn solo_first_host(pop: &Population) -> Option<usize> {
    let mut first_host_uses = vec![0usize; pop.hosts.len()];
    for d in &pop.domains {
        if let Some(&h) = d.host_indices.first() {
            first_host_uses[h] += 1;
        }
    }
    first_host_uses.iter().position(|&n| n == 1)
}

fn assert_identical(a: &CampaignResult, b: &CampaignResult, shards: usize) {
    assert_eq!(a.events, b.events, "event counts differ (shards={shards})");
    assert_eq!(
        a.faults, b.faults,
        "fault counters differ (shards={shards})"
    );
    assert_eq!(a.log.records.len(), b.log.records.len(), "shards={shards}");
    for (x, y) in a.log.records.iter().zip(&b.log.records) {
        assert_eq!(x, y, "query log diverged (shards={shards})");
    }
    assert_eq!(a.sessions.len(), b.sessions.len(), "shards={shards}");
    for (x, y) in a.sessions.iter().zip(&b.sessions) {
        assert_eq!(x, y, "session records diverged (shards={shards})");
    }
}

#[test]
fn chaos_campaign_is_byte_identical_across_shard_counts() {
    let (pop, profiles) = chaos_fixture();
    let single = run_campaign(&chaos_config(1), &pop, &profiles);

    // The plan actually fired: every fault class left a mark.
    let f = &single.faults;
    assert!(f.dns_dropped > 0, "no datagrams dropped: {f:?}");
    assert!(f.dns_truncated > 0, "no responses truncated: {f:?}");
    assert!(f.dns_duplicated > 0, "no datagrams duplicated: {f:?}");
    assert!(f.dns_delayed > 0, "no datagrams reordered: {f:?}");
    assert!(f.conn_resets > 0, "no connections reset: {f:?}");
    assert!(f.conn_stalls > 0, "no segments stalled: {f:?}");
    assert!(f.mta_stalls > 0, "no MTA stalls: {f:?}");
    assert!(f.tempfails > 0, "no greylist tempfails: {f:?}");
    assert!(f.client_retries > 0, "no client retries: {f:?}");
    assert_eq!(f.contained_panics, 1, "exactly one poisoned MTA: {f:?}");

    // Under all that chaos, most deliveries still get through (client
    // retry budget covers the greylists; retries cover lost datagrams).
    let delivered = single
        .sessions
        .iter()
        .filter(|s| s.delivery_time_ms.is_some())
        .count();
    assert!(
        delivered as f64 > 0.6 * single.sessions.len() as f64,
        "delivered {delivered}/{}",
        single.sessions.len()
    );

    for shards in [2, 4, 8] {
        let sharded = run_campaign(&chaos_config(shards), &pop, &profiles);
        assert_identical(&single, &sharded, shards);
    }
}

#[test]
fn poisoned_mta_is_contained_to_its_own_session() {
    // A 100-session campaign with one poisoned host: the crash is
    // contained by the engine (`catch_unwind`), recorded on exactly one
    // session, and no shard dies — the other 99 complete normally.
    let pop = Population::generate(&PopulationConfig {
        kind: DatasetKind::NotifyEmail,
        scale: 100.0 / 26_695.0,
        seed: 53,
    });
    let mut profiles = sample_host_profiles(&pop, 53);
    let poisoned = solo_first_host(&pop).expect("population has a single-use host");
    profiles[poisoned].poison = true;

    let mut config = chaos_config(4);
    config.seed = 53;
    config.latency = LatencyModel::default();
    config.faults = FaultConfig::default();
    let result = run_campaign(&config, &pop, &profiles);

    assert_eq!(result.sessions.len(), 100);
    assert_eq!(result.faults.contained_panics, 1);
    let errored: Vec<_> = result
        .sessions
        .iter()
        .filter(|s| s.error.is_some())
        .collect();
    assert_eq!(errored.len(), 1, "exactly one error-outcome record");
    assert_eq!(errored[0].host_index, poisoned);
    assert!(
        errored[0]
            .error
            .as_deref()
            .unwrap()
            .contains("poisoned MTA profile"),
        "error carries the panic payload: {:?}",
        errored[0].error
    );
    // The poisoned session froze mid-dialogue: no outcome, no delivery.
    assert!(errored[0].outcome.is_none());
    assert!(errored[0].delivery_time_ms.is_none());
    // Everyone else is untouched.
    let normal = result.sessions.iter().filter(|s| s.error.is_none()).count();
    assert_eq!(normal, 99);
    let delivered = result
        .sessions
        .iter()
        .filter(|s| s.delivery_time_ms.is_some())
        .count();
    assert!(delivered >= 90, "delivered {delivered}/99");
}
