//! Integration test driving the sans-IO cores over real loopback
//! sockets: the synthesizing DNS server behind UDP (with TCP fallback),
//! queried by the real resolver core.

use mailval::crypto::bigint::SplitMix64;
use mailval::crypto::rsa::RsaKeyPair;
use mailval::dkim::key::DkimKeyRecord;
use mailval::dmarc::record::DmarcRecord;
use mailval::dns::resolver::{Begin, ResolveOutcome, ResolverConfig, ResolverCore, Step};
use mailval::dns::rr::RecordType;
use mailval::dns::server::{ServerCore, Transport};
use mailval::dns::Name;
use mailval::measure::apparatus::SynthesizingAuthority;
use mailval::measure::names::NameScheme;
use mailval::measure::policies::SynthAddrs;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::Arc;
use std::time::Duration;

fn start_live_server() -> SocketAddr {
    let mut rng = SplitMix64::new(0x715e);
    let keypair = RsaKeyPair::generate(512, &mut rng);
    let authority = SynthesizingAuthority::new(
        NameScheme::default(),
        SynthAddrs::default(),
        DkimKeyRecord::for_key(&keypair.public).to_record_text(),
        DmarcRecord::strict_reject("agg@dns-lab.org").to_record_text(),
    );
    let server = Arc::new(ServerCore::new(authority));
    let udp = UdpSocket::bind("127.0.0.1:0").expect("bind");
    let addr = udp.local_addr().unwrap();
    let tcp = TcpListener::bind(addr).expect("bind tcp");

    {
        let server = Arc::clone(&server);
        std::thread::spawn(move || loop {
            let mut buf = [0u8; 1500];
            let Ok((len, peer)) = udp.recv_from(&mut buf) else {
                break;
            };
            if let Some(reply) = server.handle(&buf[..len], Transport::Udp, false) {
                let _ = udp.send_to(&reply.bytes, peer);
            }
        });
    }
    {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            for mut stream in tcp.incoming().flatten() {
                let mut len_buf = [0u8; 2];
                if stream.read_exact(&mut len_buf).is_err() {
                    continue;
                }
                let mut msg = vec![0u8; u16::from_be_bytes(len_buf) as usize];
                if stream.read_exact(&mut msg).is_err() {
                    continue;
                }
                if let Some(reply) = server.handle(&msg, Transport::Tcp, false) {
                    let _ = stream.write_all(&(reply.bytes.len() as u16).to_be_bytes());
                    let _ = stream.write_all(&reply.bytes);
                }
            }
        });
    }
    addr
}

/// Drive the resolver core against the live server, handling UDP and the
/// TCP fallback path.
fn resolve_live(addr: SocketAddr, name: &str, rtype: RecordType) -> ResolveOutcome {
    let mut core = ResolverCore::new(ResolverConfig::default());
    let begin = core.begin(Name::parse(name).unwrap(), rtype, 0);
    let Begin::Send(mut out) = begin else {
        panic!("expected upstream send")
    };
    for _ in 0..4 {
        let response = match out.transport {
            Transport::Udp => {
                let socket = UdpSocket::bind("127.0.0.1:0").unwrap();
                socket
                    .set_read_timeout(Some(Duration::from_secs(5)))
                    .unwrap();
                socket.send_to(&out.bytes, addr).unwrap();
                let mut buf = [0u8; 1500];
                let len = socket.recv(&mut buf).expect("udp reply");
                buf[..len].to_vec()
            }
            Transport::Tcp => {
                let mut stream = TcpStream::connect(addr).unwrap();
                stream
                    .set_read_timeout(Some(Duration::from_secs(5)))
                    .unwrap();
                stream
                    .write_all(&(out.bytes.len() as u16).to_be_bytes())
                    .unwrap();
                stream.write_all(&out.bytes).unwrap();
                let mut len_buf = [0u8; 2];
                stream.read_exact(&mut len_buf).unwrap();
                let mut msg = vec![0u8; u16::from_be_bytes(len_buf) as usize];
                stream.read_exact(&mut msg).unwrap();
                msg
            }
        };
        match core.on_response(out.id, &response, 0) {
            Step::Done(outcome) => return outcome,
            Step::Continue(next) => out = next,
            Step::Ignored => panic!("response ignored"),
        }
    }
    panic!("resolution did not converge");
}

#[test]
fn live_udp_resolution_of_synthesized_policy() {
    let addr = start_live_server();
    let outcome = resolve_live(addr, "t01.m00042.spf-test.dns-lab.org", RecordType::Txt);
    let ResolveOutcome::Records(records) = outcome else {
        panic!("{outcome:?}")
    };
    let policy = records[0].rdata.txt_joined().unwrap();
    assert!(policy.contains("include:l1.t01.m00042.spf-test.dns-lab.org"));
}

#[test]
fn live_tcp_fallback_on_truncation() {
    let addr = start_live_server();
    // t09 forces truncation over UDP; the resolver core must retry TCP.
    let outcome = resolve_live(addr, "t09.m00001.spf-test.dns-lab.org", RecordType::Txt);
    let ResolveOutcome::Records(records) = outcome else {
        panic!("{outcome:?}")
    };
    assert_eq!(records[0].rdata.txt_joined().unwrap(), "v=spf1 ?all");
}

#[test]
fn live_nxdomain_and_notify_names() {
    let addr = start_live_server();
    let outcome = resolve_live(addr, "nope.t06.m00001.spf-test.dns-lab.org", RecordType::A);
    assert_eq!(outcome, ResolveOutcome::NxDomain);

    let outcome = resolve_live(addr, "_dmarc.d00009.dsav-mail.dns-lab.org", RecordType::Txt);
    let ResolveOutcome::Records(records) = outcome else {
        panic!("{outcome:?}")
    };
    assert!(records[0]
        .rdata
        .txt_joined()
        .unwrap()
        .starts_with("v=DMARC1; p=reject"));
}
