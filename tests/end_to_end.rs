//! Cross-crate integration tests: the full pipeline from dataset
//! generation through campaign execution to table regeneration, plus a
//! live-socket path exercising the sans-IO cores over real UDP/TCP.

use mailval::datasets::{DatasetKind, Population, PopulationConfig};
use mailval::measure::analysis::{
    behavior_battery, lookup_limits, notify_email_flags, serial_vs_parallel, spf_timing, table4,
};
use mailval::measure::campaign::{
    run_campaign, sample_host_profiles, CampaignConfig, CampaignKind,
};
use mailval::simnet::LatencyModel;

fn pop(kind: DatasetKind, scale: f64, seed: u64) -> Population {
    Population::generate(&PopulationConfig { kind, scale, seed })
}

fn config(kind: CampaignKind, tests: Vec<&'static str>, seed: u64) -> CampaignConfig {
    CampaignConfig {
        kind,
        tests,
        seed,
        probe_pause_ms: 15_000,
        latency: LatencyModel::default(),
        shards: 1,
        faults: mailval::simnet::FaultConfig::default(),
        ..CampaignConfig::default()
    }
}

#[test]
fn full_pipeline_regenerates_headline_numbers() {
    let seed = 1234;
    let notify = pop(DatasetKind::NotifyEmail, 0.02, seed);
    let profiles = sample_host_profiles(&notify, seed);

    // NotifyEmail: the 85% / 53% / 24% headline shape.
    let email = run_campaign(
        &config(CampaignKind::NotifyEmail, vec![], seed),
        &notify,
        &profiles,
    );
    let flags = notify_email_flags(&email, notify.domains.len());
    let total = notify.domains.len();
    let spf = flags.iter().filter(|f| f.spf).count() as f64 / total as f64;
    assert!((0.78..0.94).contains(&spf), "spf rate {spf}");
    let rows = table4(&flags);
    let all3 = rows[0].count as f64 / total as f64;
    assert!((0.45..0.70).contains(&all3), "all-three share {all3}");
    let spf_dkim = rows[1].count as f64 / total as f64;
    assert!(
        (0.15..0.33).contains(&spf_dkim),
        "spf+dkim share {spf_dkim}"
    );

    // Fig 2 shape: most SPF lookups precede delivery.
    let timing = spf_timing(&email);
    assert!(timing.negative_fraction > 0.7);

    // NotifyMX drops to roughly half.
    let mx = run_campaign(
        &config(CampaignKind::NotifyMx, vec!["t12"], seed),
        &notify,
        &profiles,
    );
    let mx_hosts: std::collections::HashSet<usize> = mx
        .log
        .records
        .iter()
        .filter_map(|r| r.attribution.as_ref()?.host_index)
        .collect();
    let probed: std::collections::HashSet<usize> =
        mx.sessions.iter().map(|s| s.host_index).collect();
    let rate = mx_hosts.len() as f64 / probed.len() as f64;
    assert!((0.35..0.65).contains(&rate), "NotifyMX MTA rate {rate}");
}

#[test]
fn behavior_shapes_match_paper_directions() {
    // NotifyMX perspective: no guessed-recipient suppression, so far
    // more validators per probed MTA — a denser sample of the §7
    // behaviors at small scale.
    let seed = 77;
    let twoweek = pop(DatasetKind::NotifyEmail, 0.02, seed);
    let profiles = sample_host_profiles(&twoweek, seed);
    let run = run_campaign(
        &config(
            CampaignKind::NotifyMx,
            vec!["t01", "t02", "t06", "t08", "t11"],
            seed,
        ),
        &twoweek,
        &profiles,
    );

    // §7.1: serial dominates.
    let sp = serial_vs_parallel(&run.log);
    assert!(sp.classified > 10);
    assert!(sp.serial as f64 / sp.classified as f64 > 0.9);

    // Fig. 5: enforcement dominates, violators exceed the limit, and
    // nothing can exceed the tree's 46 lookups. (At this tiny scale the
    // per-operator sampling may or may not include a fully unbounded
    // validator, so we assert the bands rather than the extreme point.)
    let limits = lookup_limits(&run.log);
    assert!(limits.under_10 > limits.all_46);
    assert!(limits.points.iter().any(|p| p.queries > 10));
    assert!(limits.points.iter().all(|p| p.queries <= 46));

    // §7.3 directions: void-limit violations are the norm; nobody
    // follows both duplicate records.
    let battery = behavior_battery(&run.log);
    let void = battery
        .iter()
        .find(|s| s.behavior.contains("exceeded two void"))
        .unwrap();
    assert!(void.fraction() > 0.85, "void violators {}", void.fraction());
    let both = battery
        .iter()
        .find(|s| s.behavior.contains("BOTH"))
        .unwrap();
    assert_eq!(both.exhibited, 0);
}

#[test]
fn probe_sessions_never_deliver_mail() {
    // §5.1's ethics invariant, enforced mechanically: probe sessions
    // cannot deliver because no DATA payload is ever transmitted.
    let seed = 5;
    let twoweek = pop(DatasetKind::TwoWeekMx, 0.005, seed);
    let profiles = sample_host_profiles(&twoweek, seed);
    let run = run_campaign(
        &config(CampaignKind::TwoWeekMx, vec!["t12", "t15", "t39"], seed),
        &twoweek,
        &profiles,
    );
    // Even for the +all "control-pass" policies, nothing is delivered.
    for s in &run.sessions {
        assert!(s.delivery_time_ms.is_none());
        if let Some(outcome) = &s.outcome {
            assert!(!outcome.delivered);
        }
    }
}

#[test]
fn unique_from_domains_attribute_concurrent_validators() {
    // §4.5: attribution works even when many MTAs validate at once —
    // every logged query maps back to exactly one (test, MTA).
    let seed = 9;
    let twoweek = pop(DatasetKind::TwoWeekMx, 0.01, seed);
    let profiles = sample_host_profiles(&twoweek, seed);
    let run = run_campaign(
        &config(CampaignKind::TwoWeekMx, vec!["t01", "t12"], seed),
        &twoweek,
        &profiles,
    );
    let probed: std::collections::HashSet<usize> =
        run.sessions.iter().map(|s| s.host_index).collect();
    for r in &run.log.records {
        let attr = r
            .attribution
            .as_ref()
            .unwrap_or_else(|| panic!("unattributable query {}", r.qname));
        let h = attr.host_index.expect("probe queries carry an mtaid");
        assert!(probed.contains(&h), "query from unprobed host {h}");
        let t = attr.testid.as_deref().unwrap();
        assert!(t == "t01" || t == "t12");
    }
}

#[test]
fn dkim_signatures_survive_the_smtp_path() {
    // The notification is signed before transmission and verified by the
    // receiving MTA after dot-stuffing, wire transfer and re-parsing;
    // DKIM-validating MTAs must query the key of the exact signing
    // domain.
    let seed = 31;
    let notify = pop(DatasetKind::NotifyEmail, 0.008, seed);
    let profiles = sample_host_profiles(&notify, seed);
    let run = run_campaign(
        &config(CampaignKind::NotifyEmail, vec![], seed),
        &notify,
        &profiles,
    );
    let key_queries: Vec<&mailval::measure::apparatus::QueryRecord> = run
        .log
        .records
        .iter()
        .filter(|r| {
            r.attribution
                .as_ref()
                .is_some_and(|a| a.path.iter().any(|l| l == "_domainkey"))
        })
        .collect();
    assert!(!key_queries.is_empty(), "no DKIM key queries observed");
    for q in &key_queries {
        assert!(q.qname.to_string().starts_with("sel1._domainkey.d"));
    }
}

#[test]
fn deliveries_and_validations_are_deterministic() {
    let seed = 55;
    let notify = pop(DatasetKind::NotifyEmail, 0.005, seed);
    let profiles = sample_host_profiles(&notify, seed);
    let a = run_campaign(
        &config(CampaignKind::NotifyEmail, vec![], seed),
        &notify,
        &profiles,
    );
    let b = run_campaign(
        &config(CampaignKind::NotifyEmail, vec![], seed),
        &notify,
        &profiles,
    );
    assert_eq!(a.log.records.len(), b.log.records.len());
    let da: Vec<Option<u64>> = a.sessions.iter().map(|s| s.delivery_time_ms).collect();
    let db: Vec<Option<u64>> = b.sessions.iter().map(|s| s.delivery_time_ms).collect();
    assert_eq!(da, db);
}
