//! The hostile-peer payload layer must not disturb determinism: a
//! campaign whose DNS responses and SMTP replies are being corrupted in
//! flight — including content-level SPF-cycle and CNAME-chain bait from
//! hostile authoritative servers — has to produce the exact same merged
//! output (session records, terminations, payload-mutation counters and
//! the malformed-input class histogram) for any shard count, under
//! kill-and-resume, and through a store round-trip. Mutation decisions
//! hash stable per-session identifiers, and classification is assigned
//! by the parser that refuses the input, so the hostile traffic itself
//! is part of the deterministic output.

use mailval::datasets::{DatasetKind, Population, PopulationConfig};
use mailval::measure::campaign::{
    run_campaign, sample_host_profiles, CampaignConfig, CampaignKind, CampaignResult,
};
use mailval::measure::engine::SessionOutcome;
use mailval::measure::store::{CampaignStore, KeySpec};
use mailval::mta::profile::MtaProfile;
use mailval::simnet::{MalformedClass, PayloadConfig};
use std::path::PathBuf;

/// Corruption hot enough that every mutation family fires, cold enough
/// that most sessions still complete a dialogue.
fn hostile_payload() -> PayloadConfig {
    PayloadConfig {
        dns_corrupt_probability: 0.25,
        smtp_corrupt_probability: 0.08,
        seed: 0xBAD_F00D,
    }
}

fn hostile_config(shards: usize) -> CampaignConfig {
    CampaignConfig {
        kind: CampaignKind::NotifyEmail,
        tests: vec![],
        seed: 43,
        probe_pause_ms: 0,
        shards,
        payload: hostile_payload(),
        ..CampaignConfig::default()
    }
}

/// Population + profiles with one host in four flagged as a hostile
/// authoritative DNS server (unlocking the content-level mutations).
fn hostile_fixture() -> (Population, Vec<MtaProfile>) {
    let pop = Population::generate(&PopulationConfig {
        kind: DatasetKind::NotifyEmail,
        scale: 0.004,
        seed: 43,
    });
    let mut profiles = sample_host_profiles(&pop, 43);
    for (i, p) in profiles.iter_mut().enumerate() {
        if i % 4 == 0 {
            p.hostile_dns = true;
        }
    }
    (pop, profiles)
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mailval-hostile-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_identical(a: &CampaignResult, b: &CampaignResult, label: &str) {
    assert_eq!(a.events, b.events, "event counts differ ({label})");
    assert_eq!(a.faults, b.faults, "fault counters differ ({label})");
    assert_eq!(a.log.records.len(), b.log.records.len(), "{label}");
    for (x, y) in a.log.records.iter().zip(&b.log.records) {
        assert_eq!(x, y, "query log diverged ({label})");
    }
    assert_eq!(a.sessions.len(), b.sessions.len(), "{label}");
    for (x, y) in a.sessions.iter().zip(&b.sessions) {
        assert_eq!(x, y, "session records diverged ({label})");
    }
}

#[test]
fn hostile_campaign_is_byte_identical_across_shard_counts() {
    let (pop, profiles) = hostile_fixture();
    let single = run_campaign(&hostile_config(1), &pop, &profiles);

    // The payload layer actually fired, on both channels.
    let f = &single.faults;
    assert!(f.dns_payload_mutations > 0, "no DNS mutations: {f:?}");
    assert!(f.smtp_payload_mutations > 0, "no SMTP mutations: {f:?}");
    assert!(
        f.hostile_inputs > 0,
        "no sessions hostile-terminated: {f:?}"
    );
    assert!(f.malformed.total() > 0, "no rejections classified: {f:?}");
    let dns_classes: u64 = MalformedClass::ALL[..4]
        .iter()
        .map(|&c| f.malformed.count(c))
        .sum();
    let smtp_classes: u64 = MalformedClass::ALL[4..8]
        .iter()
        .map(|&c| f.malformed.count(c))
        .sum();
    assert!(dns_classes > 0, "no DNS-side classifications: {f:?}");
    assert!(smtp_classes > 0, "no SMTP-side classifications: {f:?}");

    // Hostile terminations in the per-session records agree with the
    // aggregate counter, and each carries an SMTP-side class (only the
    // SMTP channel is session-fatal).
    let terminated: Vec<_> = single
        .sessions
        .iter()
        .filter_map(|s| match s.termination {
            SessionOutcome::HostileInput { class } => Some(class),
            _ => None,
        })
        .collect();
    assert_eq!(terminated.len() as u64, f.hostile_inputs);
    for class in &terminated {
        assert!(
            MalformedClass::ALL[4..8].contains(class),
            "non-SMTP class terminated a session: {class:?}"
        );
    }

    // Most sessions still resolve despite the corruption: the resolver
    // fails closed per-query, not per-session.
    let with_outcome = single
        .sessions
        .iter()
        .filter(|s| s.outcome.is_some() || s.delivery_time_ms.is_some())
        .count();
    assert!(
        with_outcome as f64 > 0.5 * single.sessions.len() as f64,
        "hostile layer killed the campaign: {with_outcome}/{}",
        single.sessions.len()
    );

    for shards in [2, 4, 8] {
        let sharded = run_campaign(&hostile_config(shards), &pop, &profiles);
        assert_identical(&single, &sharded, &format!("shards={shards}"));
    }
}

#[test]
fn hostile_kill_and_resume_is_byte_identical() {
    let (pop, profiles) = hostile_fixture();
    let clean = run_campaign(&hostile_config(1), &pop, &profiles);
    assert!(!clean.partial);
    assert!(clean.faults.dns_payload_mutations > 0, "payload plan inert");

    for shards in [1, 2, 4] {
        let dir = scratch_dir(&format!("kill-{shards}"));
        let mut config = hostile_config(shards);
        config.journal_dir = Some(dir.clone());
        config.faults.crash_after_sessions = 4;
        let resumed = run_campaign(&config, &pop, &profiles);
        assert!(
            !resumed.partial,
            "supervised run completed (shards={shards})"
        );
        assert_identical(&clean, &resumed, &format!("resume shards={shards}"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn hostile_campaign_roundtrips_through_store_and_knobs_key_it() {
    let (pop, profiles) = hostile_fixture();
    let config = hostile_config(2);
    let result = run_campaign(&config, &pop, &profiles);
    assert!(
        result.faults.hostile_inputs > 0,
        "fixture not hostile enough"
    );

    let spec = |c: &CampaignConfig| -> mailval::measure::store::CampaignKey {
        KeySpec {
            config: c,
            dataset: "NotifyEmail",
            scale: 0.004,
            population_seed: 43,
            profiles: "hostile:0.25",
        }
        .key()
    };
    let dir = scratch_dir("store");
    let store = CampaignStore::new(dir.clone());
    let key = spec(&config);
    store.save(&key, &result).expect("save hostile campaign");
    let loaded = store.load(&key).expect("load hostile campaign");
    assert_identical(&result, &loaded, "store round-trip");

    // The payload knobs are result-determining: every one must land in
    // the content hash, so a differently-corrupted campaign can never
    // serve a stale entry.
    let mut other = config.clone();
    other.payload.dns_corrupt_probability = 0.26;
    assert_ne!(spec(&other).hash, key.hash, "dns knob missing from key");
    let mut other = config.clone();
    other.payload.smtp_corrupt_probability = 0.09;
    assert_ne!(spec(&other).hash, key.hash, "smtp knob missing from key");
    let mut other = config.clone();
    other.payload.seed ^= 1;
    assert_ne!(spec(&other).hash, key.hash, "payload seed missing from key");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn inert_payload_leaves_no_trace() {
    // The default (all-zero) payload config must be a true no-op: no
    // mutations, no classifications, no hostile terminations — the
    // baseline campaigns of the paper reproduction are untouched.
    let (pop, profiles) = hostile_fixture();
    let mut config = hostile_config(1);
    config.payload = PayloadConfig::default();
    let result = run_campaign(&config, &pop, &profiles);
    let f = &result.faults;
    assert_eq!(f.dns_payload_mutations, 0);
    assert_eq!(f.smtp_payload_mutations, 0);
    assert_eq!(f.hostile_inputs, 0);
    assert_eq!(f.malformed.total(), 0);
    for s in &result.sessions {
        assert!(
            !matches!(s.termination, SessionOutcome::HostileInput { .. }),
            "inert payload terminated session {}",
            s.session_id
        );
    }
}
