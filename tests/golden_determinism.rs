//! Golden-hash determinism: the shared-world / interned-name / Arc-
//! payload engine must produce byte-identical output to the original
//! per-shard-setup engine. The digests below were captured from the
//! pre-optimization engine (commit before the shared-world refactor)
//! with [`CampaignResult::content_hash`], which hashes session records,
//! the canonical query log, event counts, fault counters and the
//! partial flag through the journal codec — everything deterministic,
//! nothing wall-clock. Each scenario must reproduce its pinned digest
//! at shards 1, 2, 4 and 8, and its store key must be unchanged (the
//! key is a pure function of the campaign knobs; an optimization that
//! moves it would orphan every persisted campaign).
//!
//! If one of these assertions fires, the optimization changed the
//! simulation, not just its speed. Do not update the constants without
//! understanding exactly which observable output moved and why.

use mailval::datasets::{DatasetKind, Population, PopulationConfig};
use mailval::measure::campaign::{
    run_campaign, sample_host_profiles, CampaignConfig, CampaignKind, TelemetryConfig,
};
use mailval::measure::store::KeySpec;
use mailval::mta::profile::MtaProfile;
use mailval::simnet::{FaultConfig, LatencyModel, PayloadConfig};

/// Pre-change content digest of the plain scenario.
const GOLDEN_PLAIN: &str = "e68a21a48a7c695bd98bca4a786f7123304990453f70fc776ab20aea82221d39";
/// Store key of the plain scenario (v3 key domain: the IO fault plan
/// and memory budget joined the key encoding; the content digests
/// above are untouched by that bump).
const GOLDEN_PLAIN_KEY: &str = "508f624df6eb5b348e1fc4bd35fa7be2d5f9924885b7cbf4a85b1405c9619063";
/// Pre-change content digest of the chaos scenario.
const GOLDEN_CHAOS: &str = "8614df832b6b52d46cd17f3171ed0d804175bb26128bbe823a488b66592c5ac8";
/// Store key of the chaos scenario (v3 key domain).
const GOLDEN_CHAOS_KEY: &str = "22476730a5ae28b501fab08fb4547ecc862a88d0fd8db5aa2832064c942c75b8";
/// Pre-change content digest of the hostile scenario.
const GOLDEN_HOSTILE: &str = "59bdcd14db9f1e2cbe17c9a1bacbdef470244902e8ebd8057290fc466f90194a";
/// Store key of the hostile scenario (v3 key domain).
const GOLDEN_HOSTILE_KEY: &str = "8f37caad6cfc83a859254cc2613ff144078c6249a21844aea05a558111ad3fdb";

fn plain_config(shards: usize) -> CampaignConfig {
    CampaignConfig {
        kind: CampaignKind::NotifyEmail,
        tests: vec![],
        seed: 41,
        probe_pause_ms: 0,
        shards,
        ..CampaignConfig::default()
    }
}

/// The chaos_determinism fault plan, verbatim.
fn chaos_config(shards: usize) -> CampaignConfig {
    CampaignConfig {
        latency: LatencyModel {
            loss_probability: 0.05,
            ..LatencyModel::default()
        },
        faults: FaultConfig {
            duplicate_probability: 0.05,
            reorder_probability: 0.05,
            reorder_delay_ms: 40,
            truncate_probability: 0.05,
            conn_reset_probability: 0.02,
            conn_stall_probability: 0.05,
            conn_stall_ms: 200,
            seed: 0xC0FFEE,
            ..Default::default()
        },
        ..plain_config(shards)
    }
}

/// The hostile_determinism payload plan, verbatim.
fn hostile_config(shards: usize) -> CampaignConfig {
    CampaignConfig {
        seed: 43,
        payload: PayloadConfig {
            dns_corrupt_probability: 0.25,
            smtp_corrupt_probability: 0.08,
            seed: 0xBAD_F00D,
        },
        ..plain_config(shards)
    }
}

fn fixture(seed: u64) -> (Population, Vec<MtaProfile>) {
    let pop = Population::generate(&PopulationConfig {
        kind: DatasetKind::NotifyEmail,
        scale: 0.004,
        seed,
    });
    let profiles = sample_host_profiles(&pop, seed);
    (pop, profiles)
}

fn chaos_fixture() -> (Population, Vec<MtaProfile>) {
    let (pop, mut profiles) = fixture(41);
    for (i, p) in profiles.iter_mut().enumerate() {
        p.greylists = true;
        if i % 7 == 0 {
            p.stall_at_mail_ms = 500;
        }
    }
    (pop, profiles)
}

fn hostile_fixture() -> (Population, Vec<MtaProfile>) {
    let (pop, mut profiles) = fixture(43);
    for (i, p) in profiles.iter_mut().enumerate() {
        if i % 4 == 0 {
            p.hostile_dns = true;
        }
    }
    (pop, profiles)
}

fn hex(h: &[u8; 32]) -> String {
    h.iter().map(|b| format!("{b:02x}")).collect()
}

fn assert_golden(
    label: &str,
    golden_content: &str,
    golden_key: &str,
    mk_config: impl Fn(usize) -> CampaignConfig,
    pop: &Population,
    profiles: &[MtaProfile],
) {
    // Telemetry is observability only: the digest must hold with the
    // tracer off AND on, at every shard count.
    for tracing in [false, true] {
        for shards in [1usize, 2, 4, 8] {
            let mut config = mk_config(shards);
            config.telemetry = TelemetryConfig {
                tracing,
                heartbeat_ms: 0,
            };
            let result = run_campaign(&config, pop, profiles);
            assert_eq!(
                hex(&result.content_hash()),
                golden_content,
                "{label}: shards={shards} tracing={tracing} output differs \
                 from the pre-change engine"
            );
            assert_eq!(
                result.telemetry.is_some(),
                tracing,
                "{label}: telemetry presence must track the tracing knob"
            );
        }
    }
    // The store key is equally telemetry-blind.
    for tracing in [false, true] {
        let mut config = mk_config(1);
        config.telemetry = TelemetryConfig {
            tracing,
            heartbeat_ms: 0,
        };
        let key = KeySpec {
            config: &config,
            dataset: "NotifyEmail",
            scale: 0.004,
            population_seed: config.seed,
            profiles: "golden",
        }
        .key();
        assert_eq!(
            hex(&key.hash),
            golden_key,
            "{label}: store key moved (tracing={tracing}) — persisted campaigns \
             would be orphaned"
        );
    }
}

#[test]
fn plain_campaign_matches_pre_change_golden_hash() {
    let (pop, profiles) = fixture(41);
    assert_golden(
        "plain",
        GOLDEN_PLAIN,
        GOLDEN_PLAIN_KEY,
        plain_config,
        &pop,
        &profiles,
    );
}

#[test]
fn chaos_campaign_matches_pre_change_golden_hash() {
    let (pop, profiles) = chaos_fixture();
    assert_golden(
        "chaos",
        GOLDEN_CHAOS,
        GOLDEN_CHAOS_KEY,
        chaos_config,
        &pop,
        &profiles,
    );
}

#[test]
fn hostile_campaign_matches_pre_change_golden_hash() {
    let (pop, profiles) = hostile_fixture();
    assert_golden(
        "hostile",
        GOLDEN_HOSTILE,
        GOLDEN_HOSTILE_KEY,
        hostile_config,
        &pop,
        &profiles,
    );
}
