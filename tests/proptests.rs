//! Property-based tests over the protocol cores' invariants.
//!
//! Gated behind the off-by-default `proptest` feature: the external
//! `proptest` crate is a registry dependency that offline builds cannot
//! fetch. Re-add it under `[dev-dependencies]` and run
//! `cargo test --features proptest` to exercise these.
#![cfg(feature = "proptest")]

use mailval::crypto::base64;
use mailval::crypto::bigint::BigUint;
use mailval::dns::rr::{RData, RecordType};
use mailval::dns::wire::Rcode;
use mailval::dns::{Message, Name, Record};
use mailval::smtp::mail::{dot_stuff, dot_unstuff, MailMessage};
use mailval::spf::record::SpfRecord;
use mailval::spf::{EvalParams, EvalStep, SpfBehavior, SpfEvaluator};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

fn label_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9_][a-z0-9-]{0,14}").expect("valid regex")
}

fn name_strategy() -> impl Strategy<Value = Name> {
    proptest::collection::vec(label_strategy(), 1..6)
        .prop_map(|labels| Name::from_labels(labels).expect("labels are valid"))
}

fn rdata_strategy() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| RData::A(o.into())),
        any::<[u8; 16]>().prop_map(|o| RData::Aaaa(o.into())),
        name_strategy().prop_map(RData::Cname),
        name_strategy().prop_map(RData::Ns),
        name_strategy().prop_map(RData::Ptr),
        (any::<u16>(), name_strategy()).prop_map(|(preference, exchange)| RData::Mx {
            preference,
            exchange
        }),
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..255), 1..4)
            .prop_map(RData::Txt),
    ]
}

fn record_strategy() -> impl Strategy<Value = Record> {
    (name_strategy(), any::<u32>(), rdata_strategy())
        .prop_map(|(name, ttl, rdata)| Record::new(name, ttl, rdata))
}

// ---------------------------------------------------------------------------
// DNS wire format
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn dns_message_roundtrips(
        id in any::<u16>(),
        qname in name_strategy(),
        answers in proptest::collection::vec(record_strategy(), 0..8),
        rcode in 0u8..16,
    ) {
        let mut msg = Message::query(id, qname, RecordType::Txt);
        msg.is_response = true;
        msg.rcode = Rcode::from_code(rcode);
        msg.answers = answers;
        let bytes = msg.to_bytes();
        let decoded = Message::from_bytes(&bytes).expect("own encoding must decode");
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn dns_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        let _ = Message::from_bytes(&bytes);
    }

    #[test]
    fn dns_decoder_never_panics_on_bit_flipped_encodings(
        id in any::<u16>(),
        qname in name_strategy(),
        answers in proptest::collection::vec(record_strategy(), 0..6),
        flips in proptest::collection::vec((any::<u16>(), 0u8..8), 1..8),
    ) {
        // Near-valid inputs reach deeper decoder paths than uniform
        // noise: start from our own encoding of a valid message and
        // flip a handful of bits. Decoding may fail, but must never
        // panic — and whatever *does* decode must re-encode without
        // panicking through the fallible encoder.
        let mut bytes = {
            let mut msg = Message::query(id, qname, RecordType::Txt);
            msg.is_response = true;
            msg.answers = answers;
            msg.to_bytes()
        };
        for (pos, bit) in flips {
            let idx = pos as usize % bytes.len();
            bytes[idx] ^= 1 << bit;
        }
        if let Ok(decoded) = Message::from_bytes(&bytes) {
            let _ = decoded.try_to_bytes();
        }
    }

    #[test]
    fn name_display_parse_roundtrip(name in name_strategy()) {
        let reparsed = Name::parse(&name.to_string()).expect("display form parses");
        prop_assert_eq!(reparsed, name);
    }
}

// ---------------------------------------------------------------------------
// Encodings
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn base64_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..200)) {
        let encoded = base64::encode(&data);
        prop_assert_eq!(base64::decode(&encoded).expect("own encoding"), data);
    }

    #[test]
    fn base64_decode_never_panics(s in "[ -~]{0,80}") {
        let _ = base64::decode(&s);
    }

    #[test]
    fn dot_stuffing_roundtrips(lines in proptest::collection::vec("[ -~]{0,30}", 0..10)) {
        let mut body = Vec::new();
        for line in &lines {
            body.extend_from_slice(line.as_bytes());
            body.extend_from_slice(b"\r\n");
        }
        let stuffed = dot_stuff(&body);
        prop_assert_eq!(dot_unstuff(&stuffed), body.clone());
        // No stuffed line starts with a bare dot that could terminate DATA.
        for line in stuffed.split(|&b| b == b'\n') {
            prop_assert!(line != b".\r");
        }
    }
}

// ---------------------------------------------------------------------------
// Big integers
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bigint_div_rem_reconstructs(a in any::<u128>(), b in 1u128..) {
        let big_a = BigUint::from_bytes_be(&a.to_be_bytes());
        let big_b = BigUint::from_bytes_be(&b.to_be_bytes());
        let (q, r) = big_a.div_rem(&big_b);
        prop_assert_eq!(q.mul(&big_b).add(&r), big_a);
        prop_assert!(r.cmp_big(&big_b) == std::cmp::Ordering::Less);
    }

    #[test]
    fn bigint_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let (a, b) = (a as u128, b as u128);
        let big = |v: u128| BigUint::from_bytes_be(&v.to_be_bytes());
        prop_assert_eq!(big(a).add(&big(b)), big(a + b));
        prop_assert_eq!(big(a).mul(&big(b)), big(a * b));
        if a >= b {
            prop_assert_eq!(big(a).sub(&big(b)), big(a - b));
        }
    }

    #[test]
    fn bigint_bytes_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..40)) {
        let n = BigUint::from_bytes_be(&bytes);
        let out = n.to_bytes_be();
        // Canonical form strips leading zeros.
        let mut expected = bytes.clone();
        while expected.first() == Some(&0) {
            expected.remove(0);
        }
        prop_assert_eq!(out, expected);
    }
}

// ---------------------------------------------------------------------------
// SPF
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn spf_parser_never_panics(s in "[ -~]{0,120}") {
        let _ = SpfRecord::parse(&s);
        let _ = SpfRecord::parse(&format!("v=spf1 {s}"));
    }

    #[test]
    fn spf_evaluator_terminates_on_arbitrary_policies(
        mechs in proptest::collection::vec(
            prop_oneof![
                Just("all".to_string()),
                Just("-all".to_string()),
                Just("?all".to_string()),
                Just("ip4:192.0.2.0/24".to_string()),
                Just("a".to_string()),
                Just("mx".to_string()),
                Just("include:child.test".to_string()),
                Just("exists:%{ir}.x.test".to_string()),
                Just("redirect=r.test".to_string()),
                Just("ptr".to_string()),
            ],
            0..12
        )
    ) {
        let policy = format!("v=spf1 {}", mechs.join(" "));
        let params = EvalParams {
            ip: "192.0.2.1".parse().unwrap(),
            domain: Name::parse("d.test").unwrap(),
            sender_local: "u".into(),
            sender_domain: Name::parse("d.test").unwrap(),
            helo: "h.test".into(),
        };
        let mut ev = SpfEvaluator::new(params, SpfBehavior::default());
        let mut step = ev.start();
        // Answer every lookup with the same policy (TXT) or NXDOMAIN;
        // the evaluator must reach Done within the RFC lookup bounds.
        let mut rounds = 0;
        loop {
            rounds += 1;
            prop_assert!(rounds < 200, "evaluator did not terminate");
            match step {
                EvalStep::Done(done) => {
                    // Strict behavior can never exceed the limits.
                    prop_assert!(done.dns_mechanism_terms <= 11);
                    break;
                }
                EvalStep::NeedLookups(questions) => {
                    prop_assert!(!questions.is_empty());
                    let answers = questions
                        .into_iter()
                        .map(|q| {
                            let outcome = if q.rtype == RecordType::Txt {
                                mailval::dns::resolver::ResolveOutcome::Records(vec![
                                    Record::new(q.name.clone(), 60, RData::txt_from_str(&policy)),
                                ])
                            } else {
                                mailval::dns::resolver::ResolveOutcome::NxDomain
                            };
                            (q, outcome)
                        })
                        .collect();
                    step = ev.resume(answers);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Mail parsing
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn mail_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = MailMessage::parse(&bytes);
    }

    #[test]
    fn composed_mail_roundtrips(
        headers in proptest::collection::vec(
            ("[A-Za-z][A-Za-z0-9-]{0,12}", "[ -~&&[^\r\n]]{0,40}"),
            0..6
        ),
        body_lines in proptest::collection::vec("[ -~]{0,40}", 0..6),
    ) {
        let mut msg = MailMessage::new();
        for (name, value) in &headers {
            msg.add_header(name, value.trim());
        }
        msg.set_body_text(&body_lines.join("\n"));
        let reparsed = MailMessage::parse(&msg.to_bytes()).expect("own bytes parse");
        prop_assert_eq!(reparsed.headers.len(), msg.headers.len());
        prop_assert_eq!(reparsed.body, msg.body);
    }
}
