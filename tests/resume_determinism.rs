//! Kill-and-resume determinism: a campaign whose shards crash mid-run
//! (deterministic `crash_after_sessions` injection) and restart from
//! their journals must merge to output **byte-identical** to an
//! uninterrupted run — for every shard count, with and without the
//! chaos fault plan — and a journal with a corrupted tail must lose
//! only the torn frames, not the campaign.

use mailval::datasets::{DatasetKind, Population, PopulationConfig};
use mailval::measure::campaign::{
    run_campaign, sample_host_profiles, CampaignConfig, CampaignKind, CampaignResult,
    SupervisorConfig,
};
use mailval::measure::engine::{SessionBudget, SessionOutcome};
use mailval::simnet::{FaultConfig, LatencyModel};
use std::path::PathBuf;

fn tiny_pop(seed: u64) -> Population {
    Population::generate(&PopulationConfig {
        kind: DatasetKind::NotifyEmail,
        scale: 0.004,
        seed,
    })
}

fn base_config(shards: usize) -> CampaignConfig {
    CampaignConfig {
        kind: CampaignKind::NotifyEmail,
        tests: vec![],
        seed: 47,
        probe_pause_ms: 0,
        shards,
        ..CampaignConfig::default()
    }
}

/// The PR 2 chaos plan: loss plus every other injection site.
fn chaos_faults() -> FaultConfig {
    FaultConfig {
        duplicate_probability: 0.05,
        reorder_probability: 0.05,
        reorder_delay_ms: 40,
        truncate_probability: 0.05,
        conn_reset_probability: 0.02,
        conn_stall_probability: 0.05,
        conn_stall_ms: 200,
        seed: 0xC0FFEE,
        ..Default::default()
    }
}

/// A scratch journal directory unique to this process and test.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mailval-resume-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_identical(a: &CampaignResult, b: &CampaignResult, label: &str) {
    assert_eq!(a.events, b.events, "event counts differ ({label})");
    assert_eq!(a.faults, b.faults, "fault counters differ ({label})");
    assert_eq!(a.log.records.len(), b.log.records.len(), "{label}");
    for (x, y) in a.log.records.iter().zip(&b.log.records) {
        assert_eq!(x, y, "query log diverged ({label})");
    }
    assert_eq!(a.sessions.len(), b.sessions.len(), "{label}");
    for (x, y) in a.sessions.iter().zip(&b.sessions) {
        assert_eq!(x, y, "session records diverged ({label})");
    }
}

#[test]
fn kill_and_resume_is_byte_identical() {
    let pop = tiny_pop(47);
    let profiles = sample_host_profiles(&pop, 47);
    let clean = run_campaign(&base_config(1), &pop, &profiles);
    assert!(!clean.partial);
    assert!(clean.sessions.len() > 40, "fixture too small to crash");

    for shards in [1, 2, 4, 8] {
        let dir = scratch_dir(&format!("kill-{shards}"));
        let mut config = base_config(shards);
        config.journal_dir = Some(dir.clone());
        // Every shard dies right after durably journaling its 5th
        // completed session; the supervisor must restart each from its
        // journal exactly once (replayed sessions count toward the
        // crash cursor, so the trigger cannot re-fire).
        config.faults.crash_after_sessions = 5;
        let resumed = run_campaign(&config, &pop, &profiles);
        assert!(
            !resumed.partial,
            "supervised run completed (shards={shards})"
        );
        for s in &resumed.shard_stats {
            assert_eq!(
                s.restarts, 1,
                "shard {} restarted once (shards={shards})",
                s.shard
            );
        }
        assert_identical(&clean, &resumed, &format!("shards={shards}"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn kill_and_resume_is_byte_identical_under_chaos() {
    let pop = tiny_pop(53);
    let mut profiles = sample_host_profiles(&pop, 53);
    for p in &mut profiles {
        p.greylists = true;
    }
    let make = |shards: usize| {
        let mut c = base_config(shards);
        c.latency = LatencyModel {
            loss_probability: 0.05,
            ..LatencyModel::default()
        };
        c.faults = chaos_faults();
        c
    };
    let clean = run_campaign(&make(1), &pop, &profiles);
    assert!(clean.faults.dns_dropped > 0, "chaos plan inert");
    assert!(clean.faults.tempfails > 0, "greylisting inert");

    for shards in [1, 2, 4, 8] {
        let dir = scratch_dir(&format!("chaos-{shards}"));
        let mut config = make(shards);
        config.journal_dir = Some(dir.clone());
        config.faults.crash_after_sessions = 4;
        let resumed = run_campaign(&config, &pop, &profiles);
        assert!(!resumed.partial);
        assert_identical(&clean, &resumed, &format!("chaos shards={shards}"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn partial_finalize_then_explicit_resume_completes() {
    // Phase 1: zero restart budget — the crash immediately finalizes
    // each shard from its journal and the result is partial, holding
    // exactly the sessions that were durably journaled.
    let pop = tiny_pop(59);
    let profiles = sample_host_profiles(&pop, 59);
    let clean = run_campaign(&base_config(2), &pop, &profiles);
    let dir = scratch_dir("two-phase");

    let mut crashed = base_config(2);
    crashed.journal_dir = Some(dir.clone());
    crashed.faults.crash_after_sessions = 5;
    crashed.supervisor = SupervisorConfig {
        max_shard_restarts: 0,
        ..SupervisorConfig::default()
    };
    let partial = run_campaign(&crashed, &pop, &profiles);
    assert!(partial.partial, "restart budget 0 must finalize partial");
    assert_eq!(
        partial.sessions.len(),
        10,
        "2 shards × 5 journaled sessions each survive"
    );
    // The salvaged prefix agrees with the clean run session-for-session.
    for s in &partial.sessions {
        let reference = clean
            .sessions
            .iter()
            .find(|c| c.session_id == s.session_id)
            .expect("salvaged session exists in clean run");
        assert_eq!(s, reference, "salvaged session diverged");
    }

    // Phase 2: resume from the same journals. The crash injection is
    // still armed, but the 5 replayed sessions already satisfy it, so
    // the shards run to the end and the merged result is byte-identical
    // to the uninterrupted run.
    let mut resume = crashed.clone();
    resume.resume = true;
    resume.supervisor = SupervisorConfig::default();
    let finished = run_campaign(&resume, &pop, &profiles);
    assert!(!finished.partial);
    assert_identical(&clean, &finished, "two-phase resume");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_journal_tail_is_rerun_not_fatal() {
    let pop = tiny_pop(61);
    let profiles = sample_host_profiles(&pop, 61);
    let clean = run_campaign(&base_config(2), &pop, &profiles);
    let dir = scratch_dir("corrupt");

    // Build journals holding a prefix of each shard, then mangle them.
    let mut crashed = base_config(2);
    crashed.journal_dir = Some(dir.clone());
    crashed.faults.crash_after_sessions = 6;
    crashed.supervisor = SupervisorConfig {
        max_shard_restarts: 0,
        ..SupervisorConfig::default()
    };
    let _ = run_campaign(&crashed, &pop, &profiles);

    for entry in std::fs::read_dir(&dir).expect("journal dir exists") {
        let path = entry.expect("entry").path();
        let mut bytes = std::fs::read(&path).expect("journal readable");
        assert!(bytes.len() > 16, "journal holds frames");
        // Flip a byte inside the last frame's payload and chop the file
        // mid-frame for good measure: a torn, corrupted tail.
        let n = bytes.len();
        bytes[n - 5] ^= 0xff;
        bytes.truncate(n - 2);
        std::fs::write(&path, &bytes).expect("journal writable");
    }

    let mut resume = crashed.clone();
    resume.resume = true;
    resume.faults.crash_after_sessions = 0;
    resume.supervisor = SupervisorConfig::default();
    let finished = run_campaign(&resume, &pop, &profiles);
    assert!(!finished.partial);
    // The corrupted tail frames were dropped and re-run; the merged
    // output is still byte-identical to the uninterrupted run.
    assert_identical(&clean, &finished, "corrupt-tail resume");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn event_budget_terminates_runaway_sessions_within_budget() {
    let pop = tiny_pop(67);
    let profiles = sample_host_profiles(&pop, 67);
    let mut config = base_config(1);
    config.budget = SessionBudget {
        max_events: 10,
        ..SessionBudget::default()
    };
    let result = run_campaign(&config, &pop, &profiles);
    assert!(!result.sessions.is_empty());
    assert!(
        result.faults.budget_exhausted > 0,
        "a 10-event budget must cut sessions short"
    );
    let mut exhausted = 0usize;
    for s in &result.sessions {
        if let SessionOutcome::BudgetExhausted { events, .. } = s.termination {
            exhausted += 1;
            assert!(
                events <= 10,
                "session {} terminated past its event budget ({events})",
                s.session_id
            );
        }
    }
    assert_eq!(exhausted as u64, result.faults.budget_exhausted);

    // Budget decisions are per-session and therefore shard-invariant.
    config.shards = 4;
    let sharded = run_campaign(&config, &pop, &profiles);
    assert_eq!(sharded.events, result.events);
    assert_eq!(sharded.faults, result.faults);
    assert_eq!(sharded.sessions, result.sessions);
}

#[test]
fn virtual_time_budget_terminates_slow_sessions() {
    let pop = tiny_pop(71);
    let profiles = sample_host_profiles(&pop, 71);
    // Probe sessions sleep 15 s between commands (§4.6), so a 20 s
    // virtual budget cannot fit a full dialogue.
    let mut config = base_config(1);
    config.kind = CampaignKind::NotifyMx;
    config.tests = vec!["t01"];
    config.probe_pause_ms = 15_000;
    config.budget = SessionBudget {
        max_virtual_ms: 20_000,
        ..SessionBudget::default()
    };
    let result = run_campaign(&config, &pop, &profiles);
    assert!(result.faults.budget_exhausted > 0);
    for s in &result.sessions {
        if let SessionOutcome::BudgetExhausted { virtual_ms, .. } = s.termination {
            assert!(virtual_ms > 20_000, "terminated before exceeding budget");
        }
    }
}
