//! Quickstart: the three validation mechanisms in isolation.
//!
//! Run with `cargo run --example quickstart`.
//!
//! 1. Parse and evaluate an SPF policy (the resumable `check_host()`),
//! 2. DKIM-sign a message and verify it,
//! 3. Combine both into a DMARC verdict.

use mailval::crypto::bigint::SplitMix64;
use mailval::crypto::rsa::RsaKeyPair;
use mailval::dkim::key::DkimKeyRecord;
use mailval::dkim::sign::{sign_message, SignConfig};
use mailval::dkim::{DkimResult, DkimVerifier, VerifyStep};
use mailval::dmarc::eval::{AuthResults, DmarcEvaluator, DmarcStep};
use mailval::dns::resolver::ResolveOutcome;
use mailval::dns::rr::{RData, RecordType};
use mailval::dns::{Name, Record};
use mailval::smtp::mail::MailMessage;
use mailval::spf::{DnsQuestion, EvalParams, EvalStep, SpfBehavior, SpfEvaluator};
use std::collections::HashMap;

fn n(s: &str) -> Name {
    Name::parse(s).unwrap()
}

fn main() {
    // ------------------------------------------------------------------
    // 1. SPF: publish a policy, evaluate a sender against it.
    // ------------------------------------------------------------------
    println!("== 1. SPF ==");
    let mut dns: HashMap<(Name, RecordType), ResolveOutcome> = HashMap::new();
    dns.insert(
        (n("example.com"), RecordType::Txt),
        ResolveOutcome::Records(vec![Record::new(
            n("example.com"),
            300,
            RData::txt_from_str("v=spf1 ip4:192.0.2.0/24 a:mail.example.com -all"),
        )]),
    );
    dns.insert(
        (n("mail.example.com"), RecordType::A),
        ResolveOutcome::Records(vec![Record::new(
            n("mail.example.com"),
            300,
            RData::A("198.51.100.25".parse().unwrap()),
        )]),
    );

    for client_ip in ["192.0.2.55", "198.51.100.25", "203.0.113.9"] {
        let params = EvalParams {
            ip: client_ip.parse().unwrap(),
            domain: n("example.com"),
            sender_local: "alice".into(),
            sender_domain: n("example.com"),
            helo: "mail.example.com".into(),
        };
        let mut evaluator = SpfEvaluator::new(params, SpfBehavior::default());
        let mut step = evaluator.start();
        let evaluation = loop {
            match step {
                EvalStep::Done(done) => break done,
                EvalStep::NeedLookups(questions) => {
                    // The evaluator is sans-IO: we answer its questions
                    // from our map (a real embedder uses a resolver).
                    let answers: Vec<(DnsQuestion, ResolveOutcome)> = questions
                        .into_iter()
                        .map(|q| {
                            let a = dns
                                .get(&(q.name.clone(), q.rtype))
                                .cloned()
                                .unwrap_or(ResolveOutcome::NxDomain);
                            (q, a)
                        })
                        .collect();
                    step = evaluator.resume(answers);
                }
            }
        };
        println!(
            "  {client_ip:<15} -> {} ({} DNS-mechanism terms, {} queries)",
            evaluation.result, evaluation.dns_mechanism_terms, evaluation.queries_issued
        );
    }

    // ------------------------------------------------------------------
    // 2. DKIM: sign, publish the key, verify.
    // ------------------------------------------------------------------
    println!("\n== 2. DKIM ==");
    let mut rng = SplitMix64::new(0x5eed);
    let keypair = RsaKeyPair::generate(1024, &mut rng);

    let mut message = MailMessage::new();
    message.add_header("From", "Alice <alice@example.com>");
    message.add_header("To", "bob@target.test");
    message.add_header("Subject", "Quarterly report");
    message.set_body_text("Hi Bob,\nthe report is attached.\n");

    let config = SignConfig::new(n("example.com"), n("sel1"));
    let signature = sign_message(&message, &config, &keypair.private).unwrap();
    message.prepend_header("DKIM-Signature", &signature);
    println!("  signed: DKIM-Signature: {}...", &signature[..60]);

    let key_record = DkimKeyRecord::for_key(&keypair.public).to_record_text();
    let mut verifier = DkimVerifier::new(&message, 0);
    let VerifyStep::NeedKey { name, .. } = verifier.start() else {
        panic!("expected key lookup");
    };
    println!("  verifier asks for {name} TXT");
    let answer = ResolveOutcome::Records(vec![Record::new(
        name,
        300,
        RData::txt_from_str(&key_record),
    )]);
    let VerifyStep::Done(result) = verifier.on_key(answer) else {
        panic!()
    };
    println!("  verification: {result:?}");
    assert_eq!(result, DkimResult::Pass);

    // A tampered copy fails.
    let mut tampered = message.clone();
    tampered.set_body_text("Hi Bob,\nsend the money to this account instead.\n");
    let mut verifier = DkimVerifier::new(&tampered, 0);
    let VerifyStep::NeedKey { name, .. } = verifier.start() else {
        panic!()
    };
    let answer = ResolveOutcome::Records(vec![Record::new(
        name,
        300,
        RData::txt_from_str(&key_record),
    )]);
    let VerifyStep::Done(result) = verifier.on_key(answer) else {
        panic!()
    };
    println!("  tampered copy: {result:?}");

    // ------------------------------------------------------------------
    // 3. DMARC: combine SPF + DKIM under identifier alignment.
    // ------------------------------------------------------------------
    println!("\n== 3. DMARC ==");
    let auth = AuthResults {
        from_domain: n("example.com"),
        spf_result: mailval::spf::SpfResult::Pass,
        spf_domain: Some(n("example.com")),
        dkim: vec![(n("example.com"), true)],
    };
    let mut evaluator = DmarcEvaluator::new(auth, 0);
    let DmarcStep::NeedLookup { name, .. } = evaluator.start() else {
        panic!()
    };
    println!("  evaluator asks for {name} TXT");
    let answer = ResolveOutcome::Records(vec![Record::new(
        name,
        300,
        RData::txt_from_str("v=DMARC1; p=reject; rua=mailto:agg@example.com"),
    )]);
    let DmarcStep::Done(verdict) = evaluator.on_answer(answer) else {
        panic!()
    };
    println!(
        "  verdict: pass={} via={:?} disposition={:?}",
        verdict.pass, verdict.passed_via, verdict.disposition
    );
}
