//! A miniature end-to-end measurement campaign: generate a synthetic
//! recipient population, run all three experiments of the paper at
//! small scale, and print the headline numbers.
//!
//! Run with `cargo run --release --example campaign`.

use mailval::datasets::{DatasetKind, Population, PopulationConfig};
use mailval::measure::analysis::{
    behavior_battery, consistency, notify_email_flags, notify_validating_counts,
    probe_validating_counts, serial_vs_parallel, spf_timing, table4,
};
use mailval::measure::campaign::{
    run_campaign, sample_host_profiles, CampaignConfig, CampaignKind,
};
use mailval::simnet::LatencyModel;

fn main() {
    let seed = 7;
    let scale = 0.05;

    println!(
        "generating populations at {:.0}% of paper scale ...",
        scale * 100.0
    );
    let notify = Population::generate(&PopulationConfig {
        kind: DatasetKind::NotifyEmail,
        scale,
        seed,
    });
    let twoweek = Population::generate(&PopulationConfig {
        kind: DatasetKind::TwoWeekMx,
        scale,
        seed,
    });
    let notify_profiles = sample_host_profiles(&notify, seed);
    let twoweek_profiles = sample_host_profiles(&twoweek, seed);

    let config = |kind| CampaignConfig {
        kind,
        tests: vec!["t01", "t03", "t04", "t06", "t12"],
        seed,
        probe_pause_ms: 15_000,
        latency: LatencyModel::default(),
        shards: 4,
        faults: mailval::simnet::FaultConfig::default(),
        ..CampaignConfig::default()
    };

    println!(
        "\n-- NotifyEmail: {} legitimate deliveries --",
        notify.domains.len()
    );
    let email_run = run_campaign(
        &config(CampaignKind::NotifyEmail),
        &notify,
        &notify_profiles,
    );
    let flags = notify_email_flags(&email_run, notify.domains.len());
    let counts = notify_validating_counts(&email_run, &notify);
    println!(
        "SPF-validating: {}/{} domains ({:.0}%)",
        counts.validating_domains,
        counts.total_domains,
        counts.domain_rate() * 100.0
    );
    for row in table4(&flags) {
        let (s, d, m) = row.combo;
        let mark = |b: bool| if b { "v" } else { "x" };
        println!(
            "  SPF={} DKIM={} DMARC={}: {}",
            mark(s),
            mark(d),
            mark(m),
            row.count
        );
    }
    let timing = spf_timing(&email_run);
    println!(
        "SPF before delivery: {:.0}% of {} timed domains",
        timing.negative_fraction * 100.0,
        timing.domains
    );

    println!("\n-- NotifyMX: probing every MX host --");
    let mx_run = run_campaign(&config(CampaignKind::NotifyMx), &notify, &notify_profiles);
    let mx_counts = probe_validating_counts(&mx_run, &notify);
    println!(
        "SPF-validating: {}/{} MTAs ({:.0}%)",
        mx_counts.validating_mtas,
        mx_counts.total_mtas,
        mx_counts.mta_rate() * 100.0
    );
    let cons = consistency(&email_run, &mx_run, &notify);
    println!(
        "inconsistent with NotifyEmail: {}/{} domains, {:.0}% of them Email-only",
        cons.inconsistent,
        cons.common_domains,
        100.0 * cons.email_only as f64 / cons.inconsistent.max(1) as f64
    );

    println!("\n-- TwoWeekMX: probing the high-demand dataset --");
    let tw_run = run_campaign(
        &config(CampaignKind::TwoWeekMx),
        &twoweek,
        &twoweek_profiles,
    );
    let tw_counts = probe_validating_counts(&tw_run, &twoweek);
    println!(
        "SPF-validating: {}/{} MTAs ({:.0}%)",
        tw_counts.validating_mtas,
        tw_counts.total_mtas,
        tw_counts.mta_rate() * 100.0
    );
    let sp = serial_vs_parallel(&tw_run.log);
    println!(
        "serial lookups: {}/{} classified MTAs",
        sp.serial, sp.classified
    );
    for stat in behavior_battery(&tw_run.log) {
        if stat.evaluated > 0 {
            println!(
                "  [{}] {}: {}/{} ({:.0}%; paper {:.0}%)",
                stat.testid,
                stat.behavior,
                stat.exhibited,
                stat.evaluated,
                stat.fraction() * 100.0,
                stat.paper_fraction * 100.0
            );
        }
    }
}
