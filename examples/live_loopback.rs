//! Live loopback: the same sans-IO cores that power the simulation,
//! bound to real sockets.
//!
//! Run with `cargo run --example live_loopback`.
//!
//! Three components talk over 127.0.0.1:
//!
//! * the apparatus's **synthesizing authoritative DNS server** on a real
//!   UDP+TCP socket pair,
//! * a **receiving MTA** (SMTP server + SPF/DKIM/DMARC validation) on a
//!   real TCP listener, resolving through the DNS server,
//! * the **sending client**, delivering a DKIM-signed notification.
//!
//! Guide note: these are a handful of sequential exchanges, so plain
//! blocking `std::net` is the right tool (simpler than an async
//! runtime); the scale path lives in the virtual-time simulator.

use mailval::crypto::bigint::SplitMix64;
use mailval::crypto::rsa::RsaKeyPair;
use mailval::dkim::key::DkimKeyRecord;
use mailval::dkim::sign::{sign_message, SignConfig};
use mailval::dmarc::record::DmarcRecord;
use mailval::dns::resolver::ResolveOutcome;
use mailval::dns::server::{ServerCore, Transport};
use mailval::dns::{Message, Name};
use mailval::measure::apparatus::SynthesizingAuthority;
use mailval::measure::names::NameScheme;
use mailval::measure::policies::SynthAddrs;
use mailval::mta::actor::{ConnContext, MtaActor, MtaEvent, MtaInput, MtaOutput};
use mailval::mta::profile::MtaProfile;
use mailval::smtp::client::{ClientAction, ClientConfig, ClientSession};
use mailval::smtp::mail::MailMessage;
use mailval::smtp::reply::ReplyParser;
use mailval::smtp::EmailAddress;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // --- Apparatus: key material + synthesizing authority -------------
    let mut rng = SplitMix64::new(0x10ca1);
    let keypair = RsaKeyPair::generate(1024, &mut rng);
    let scheme = NameScheme::default();
    // The live client connects from loopback; publish that as the
    // legitimate sender so SPF passes end to end.
    let addrs = SynthAddrs {
        sender_v4: "127.0.0.1".parse().unwrap(),
        sender_v6: "::1".parse().unwrap(),
        ..SynthAddrs::default()
    };
    let authority = SynthesizingAuthority::new(
        scheme.clone(),
        addrs,
        DkimKeyRecord::for_key(&keypair.public).to_record_text(),
        DmarcRecord::strict_reject("dmarc-reports@dns-lab.org").to_record_text(),
    );
    let server = Arc::new(ServerCore::new(authority));

    // --- DNS server on real UDP + TCP sockets -------------------------
    let udp = UdpSocket::bind("127.0.0.1:0").expect("bind udp");
    let dns_addr = udp.local_addr().unwrap();
    let tcp = TcpListener::bind(dns_addr).expect("bind tcp");
    println!("[dns] authoritative server on {dns_addr} (udp+tcp)");

    {
        let server = Arc::clone(&server);
        let udp = udp.try_clone().unwrap();
        std::thread::spawn(move || loop {
            let mut buf = [0u8; 1500];
            let Ok((len, peer)) = udp.recv_from(&mut buf) else {
                break;
            };
            if let Some(reply) = server.handle(&buf[..len], Transport::Udp, false) {
                // Scale down the measurement delays (100 ms → 1 ms).
                std::thread::sleep(Duration::from_millis(reply.delay_ms / 100));
                let _ = udp.send_to(&reply.bytes, peer);
            }
        });
    }
    {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            for stream in tcp.incoming().flatten() {
                let server = Arc::clone(&server);
                std::thread::spawn(move || {
                    let mut stream = stream;
                    let mut len_buf = [0u8; 2];
                    if stream.read_exact(&mut len_buf).is_err() {
                        return;
                    }
                    let len = u16::from_be_bytes(len_buf) as usize;
                    let mut msg = vec![0u8; len];
                    if stream.read_exact(&mut msg).is_err() {
                        return;
                    }
                    if let Some(reply) = server.handle(&msg, Transport::Tcp, false) {
                        let _ = stream.write_all(&(reply.bytes.len() as u16).to_be_bytes());
                        let _ = stream.write_all(&reply.bytes);
                    }
                });
            }
        });
    }

    // --- The receiving MTA on a real TCP listener ----------------------
    let smtp_listener = TcpListener::bind("127.0.0.1:0").expect("bind smtp");
    let smtp_addr = smtp_listener.local_addr().unwrap();
    println!("[mta] receiving MTA on {smtp_addr}");

    let mta_thread = std::thread::spawn(move || {
        let (stream, peer) = smtp_listener.accept().expect("accept");
        serve_mta(stream, peer, dns_addr);
    });

    // --- The sending client --------------------------------------------
    let from = scheme.notify_from(1);
    let mut message = MailMessage::new();
    message.add_header("From", &format!("Network Notifier <{from}>"));
    message.add_header("To", "operator@recipient.test");
    message.add_header("Subject", "Live loopback demonstration");
    message.add_header("Date", "Mon, 12 Oct 2020 09:00:00 +0000");
    message.add_header("Reply-To", "research@dns-lab.org");
    message.set_body_text("This message crossed real sockets.\n");
    let sign_config = SignConfig::new(scheme.notify_domain(1), Name::parse("sel1").unwrap());
    let signature = sign_message(&message, &sign_config, &keypair.private).unwrap();
    message.prepend_header("DKIM-Signature", &signature);

    let mut client = ClientSession::new(ClientConfig {
        helo_identity: "notify.dns-lab.org".into(),
        mail_from: Some(from),
        rcpt_candidates: vec![EmailAddress::new(
            "operator",
            Name::parse("recipient.test").unwrap(),
        )],
        message: Some(message.to_bytes()),
        pause_before_commands_ms: 0,
        max_session_retries: 0,
        retry_backoff_ms: 0,
    });

    let stream = TcpStream::connect(smtp_addr).expect("connect smtp");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut parser = ReplyParser::new();
    let mut line = String::new();
    'outer: loop {
        line.clear();
        if reader.read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        print!("[client] <- {line}");
        if let Ok(Some(reply)) = parser.push_line(line.trim_end()) {
            let mut action = client.on_reply(reply);
            loop {
                match action {
                    ClientAction::Send(bytes) => {
                        writer.write_all(&bytes).unwrap();
                        if bytes.len() < 120 {
                            print!("[client] -> {}", String::from_utf8_lossy(&bytes));
                        } else {
                            println!("[client] -> <{} bytes of message data>", bytes.len());
                        }
                        break;
                    }
                    ClientAction::Pause(ms) => {
                        if ms == 0 {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(ms / 100));
                        action = client.on_pause_elapsed();
                    }
                    ClientAction::Close(outcome) => {
                        println!(
                            "[client] done: delivered={} rejection={:?}",
                            outcome.delivered, outcome.rejection
                        );
                        break 'outer;
                    }
                }
            }
        }
    }
    drop(writer);
    mta_thread.join().unwrap();
    println!("live loopback complete");
}

/// Serve one SMTP connection with the MtaActor, resolving through the
/// live DNS server.
fn serve_mta(stream: TcpStream, peer: SocketAddr, dns_addr: SocketAddr) {
    let mut actor = MtaActor::new(
        "mx.recipient.test",
        MtaProfile::strict(),
        ConnContext {
            client_ip: peer.ip(),
            client_blacklisted: false,
            recipients_guessed: false,
        },
    );
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    let mut pending = actor.handle(MtaInput::Connected);
    let mut line = String::new();
    loop {
        // Drain outputs, performing real I/O for each.
        while !pending.is_empty() {
            let mut next = Vec::new();
            for output in pending.drain(..) {
                match output {
                    MtaOutput::Smtp(text) => {
                        let _ = writer.write_all(text.as_bytes());
                    }
                    MtaOutput::Resolve { qid, name, rtype } => {
                        println!("[mta] resolving {name} {rtype}");
                        let outcome = blocking_resolve(dns_addr, &name, rtype);
                        next.extend(actor.handle(MtaInput::DnsFinished { qid, outcome }));
                    }
                    MtaOutput::SetTimer { token, delay_ms } => {
                        std::thread::sleep(Duration::from_millis(delay_ms / 1000));
                        next.extend(actor.handle(MtaInput::Timer { token }));
                    }
                    MtaOutput::Event(MtaEvent::SpfConcluded(result)) => {
                        println!("[mta] SPF: {result}");
                    }
                    MtaOutput::Event(MtaEvent::SpfLookups(n)) => {
                        println!("[mta] SPF used {n} DNS lookups");
                    }
                    MtaOutput::Event(MtaEvent::DkimConcluded(ok)) => {
                        println!("[mta] DKIM: {}", if ok { "pass" } else { "fail" });
                    }
                    MtaOutput::Event(MtaEvent::DmarcConcluded(ok)) => {
                        println!("[mta] DMARC: {}", if ok { "pass" } else { "fail" });
                    }
                    MtaOutput::Event(MtaEvent::MessageAccepted) => {
                        println!("[mta] message accepted for delivery");
                    }
                    MtaOutput::Event(MtaEvent::TempFailed) => {
                        println!("[mta] greylisted the client (451)");
                    }
                    MtaOutput::Event(MtaEvent::SpfHostile {
                        cycle_detected,
                        lookups_exhausted,
                    }) => {
                        println!(
                            "[mta] hostile SPF policy: cycle={cycle_detected} \
                             exhausted={lookups_exhausted}"
                        );
                    }
                    MtaOutput::Stall { delay_ms } => {
                        std::thread::sleep(Duration::from_millis(delay_ms / 1000));
                    }
                    MtaOutput::Close => return,
                }
            }
            pending = next;
        }
        line.clear();
        if reader.read_line(&mut line).unwrap_or(0) == 0 {
            return;
        }
        pending = actor.handle(MtaInput::Line(line.trim_end().to_string()));
    }
}

/// Blocking stub resolution against the live server: UDP first, TCP on
/// truncation (the resolver core's logic, driven synchronously).
fn blocking_resolve(
    dns_addr: SocketAddr,
    name: &Name,
    rtype: mailval::dns::rr::RecordType,
) -> ResolveOutcome {
    let query = Message::query(0x4242, name.clone(), rtype);
    let socket = UdpSocket::bind("127.0.0.1:0").expect("bind");
    socket
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    if socket.send_to(&query.to_bytes(), dns_addr).is_err() {
        return ResolveOutcome::Timeout;
    }
    let mut buf = [0u8; 1500];
    let Ok(len) = socket.recv(&mut buf) else {
        return ResolveOutcome::Timeout;
    };
    let Ok(response) = Message::from_bytes(&buf[..len]) else {
        return ResolveOutcome::ServFail;
    };
    let response = if response.truncated {
        // Retry over TCP with the 2-byte length framing.
        let Ok(mut stream) = TcpStream::connect(dns_addr) else {
            return ResolveOutcome::Timeout;
        };
        let bytes = query.to_bytes();
        let _ = stream.write_all(&(bytes.len() as u16).to_be_bytes());
        let _ = stream.write_all(&bytes);
        let mut len_buf = [0u8; 2];
        if stream.read_exact(&mut len_buf).is_err() {
            return ResolveOutcome::Timeout;
        }
        let mut msg = vec![0u8; u16::from_be_bytes(len_buf) as usize];
        if stream.read_exact(&mut msg).is_err() {
            return ResolveOutcome::Timeout;
        }
        match Message::from_bytes(&msg) {
            Ok(m) => m,
            Err(_) => return ResolveOutcome::ServFail,
        }
    } else {
        response
    };
    match response.rcode {
        mailval::dns::Rcode::NoError if response.answers.is_empty() => ResolveOutcome::NoData,
        mailval::dns::Rcode::NoError => ResolveOutcome::Records(response.answers),
        mailval::dns::Rcode::NxDomain => ResolveOutcome::NxDomain,
        _ => ResolveOutcome::ServFail,
    }
}
