//! Validator fingerprinting (the paper's §8 future work): probe a small
//! simulated population with the full behavior battery and cluster MTAs
//! by their behavior vectors.
//!
//! Run with `cargo run --release --example fingerprint`.

use mailval::datasets::{DatasetKind, Population, PopulationConfig};
use mailval::measure::campaign::{
    run_campaign, sample_host_profiles, CampaignConfig, CampaignKind,
};
use mailval::measure::fingerprint::{behavior_vectors, classify, fully_observed, summarize};
use mailval::simnet::LatencyModel;

fn main() {
    let seed = 99;
    let pop = Population::generate(&PopulationConfig {
        kind: DatasetKind::TwoWeekMx,
        scale: 0.03,
        seed,
    });
    let profiles = sample_host_profiles(&pop, seed);
    let result = run_campaign(
        &CampaignConfig {
            kind: CampaignKind::TwoWeekMx,
            tests: vec![
                "t01", "t02", "t03", "t04", "t05", "t06", "t07", "t08", "t09", "t10",
            ],
            seed,
            probe_pause_ms: 15_000,
            latency: LatencyModel::default(),
            shards: 4,
            faults: mailval::simnet::FaultConfig::default(),
            ..CampaignConfig::default()
        },
        &pop,
        &profiles,
    );

    let vectors = behavior_vectors(&result.log);
    let classes = classify(&vectors);
    let summary = summarize(&classes);
    let complete = fully_observed(&vectors);

    println!(
        "{} MTAs fingerprinted ({} with complete vectors) -> {} behavior classes",
        summary.mtas,
        complete.len(),
        summary.classes
    );
    println!(
        "largest class: {} MTAs; {} singleton classes\n",
        summary.largest, summary.singletons
    );
    for (i, class) in classes.iter().take(8).enumerate() {
        println!(
            "class {:>2}: {:>4} MTAs  {:?}",
            i + 1,
            class.hosts.len(),
            class.vector
        );
    }
    println!(
        "\nInterpretation: identical vectors suggest the same validator\n\
         implementation/configuration; the long tail of small classes is\n\
         where bespoke or misconfigured validators live (§8 of the paper)."
    );
}
