//! # mailval
//!
//! A full reproduction of *Measuring Email Sender Validation in the
//! Wild* (Deccio et al., CoNEXT 2021): from-scratch SPF (RFC 7208),
//! DKIM (RFC 6376) and DMARC (RFC 7489) stacks over a from-scratch DNS
//! and SMTP implementation, the paper's measurement apparatus
//! (synthesizing authoritative DNS server, probe SMTP client, 39 test
//! policies, query-log attribution), and a deterministic simulated
//! Internet mail population to measure.
//!
//! This crate is an umbrella re-exporting the workspace members:
//!
//! | crate | contents |
//! |---|---|
//! | [`crypto`] | Base64, SHA-1/256, HMAC, bignum, RSA |
//! | [`dns`] | names, wire codec, zones, server & resolver cores |
//! | [`smtp`] | commands, replies, messages, server & client sessions |
//! | [`spf`] | RFC 7208 records, macros, resumable `check_host()` |
//! | [`dkim`] | RFC 6376 canonicalization, signing, verification |
//! | [`dmarc`] | RFC 7489 records, alignment, policy discovery |
//! | [`simnet`] | virtual-time event queue, PRNG, latency model |
//! | [`mta`] | simulated MTA population: profiles, actors |
//! | [`datasets`] | synthetic NotifyEmail / TwoWeekMX datasets |
//! | [`measure`] | the paper's apparatus, campaigns and analyses |
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for paper-vs-measured results.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use mailval_crypto as crypto;
pub use mailval_datasets as datasets;
pub use mailval_dkim as dkim;
pub use mailval_dmarc as dmarc;
pub use mailval_dns as dns;
pub use mailval_measure as measure;
pub use mailval_mta as mta;
pub use mailval_simnet as simnet;
pub use mailval_smtp as smtp;
pub use mailval_spf as spf;
