#!/usr/bin/env bash
# Full offline verification: formatting, lints, tier-1 build + tests,
# and the chaos determinism gate.
#
# Everything here must run without network access — the workspace has
# no registry dependencies (see the `proptest` feature note in the root
# Cargo.toml), and CARGO_NET_OFFLINE pins cargo to what is vendored.
#
# Usage:
#   scripts/verify.sh              # the full gate (fmt, clippy, build,
#                                  # tests, chaos + resume determinism,
#                                  # warm-store artifact determinism)
#   scripts/verify.sh --chaos      # only the chaos determinism stage
#   scripts/verify.sh --resume     # only the kill-and-resume stage
#   scripts/verify.sh --artifacts  # only the artifact-store stage
#   scripts/verify.sh --hostile    # only the hostile-payload stage
#   scripts/verify.sh --io         # only the storage-fault stage
#   scripts/verify.sh --perf       # only the performance-regression stage
#   scripts/verify.sh --trace      # only the telemetry stage
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

chaos() {
  # Fault-injection determinism: a campaign under 5% datagram loss,
  # greylisting/stalling/resetting MTAs and one injected crash must
  # merge byte-identically for shards = 1/2/4/8, and the crash must be
  # contained to its own session. Fixed seeds live in the test itself.
  echo "== tier-1: chaos determinism (cargo test --test chaos_determinism) =="
  MAILVAL_QUIET=1 cargo test -q --test chaos_determinism
}

resume() {
  # Supervision and durability: shards that crash mid-run (deterministic
  # crash_after_sessions injection) must restart from their journals and
  # merge byte-identically to an uninterrupted run for shards = 1/2/4/8,
  # with and without the chaos plan; corrupted journal tails are re-run,
  # not fatal; and session budgets terminate runaways within bounds.
  echo "== tier-1: kill-and-resume determinism (cargo test --test resume_determinism) =="
  MAILVAL_QUIET=1 cargo test -q --test resume_determinism
}

artifacts() {
  # Campaign-store determinism: a cold `--all` populates the content-
  # addressed store; two warm re-renders must simulate zero campaigns
  # (asserted via the CLI's accounting line) and produce byte-identical
  # artifact text. Small scale, fixed seed/shards so the key is stable.
  echo "== artifacts: warm-store render-twice (mailval-artifacts --all) =="
  cargo build --release -p mailval-bench --bin mailval-artifacts
  local bin=target/release/mailval-artifacts
  local dir
  dir=$(mktemp -d)
  trap 'rm -rf "$dir"' RETURN
  local -a env=(MAILVAL_SCALE=0.01 MAILVAL_SEED=2021 MAILVAL_SHARDS=2)
  env "${env[@]}" "$bin" --store "$dir/store" --all \
    >"$dir/cold.txt" 2>"$dir/cold.err"
  for pass in warm1 warm2; do
    env "${env[@]}" "$bin" --store "$dir/store" --all \
      >"$dir/$pass.txt" 2>"$dir/$pass.err"
    grep -q "simulated=0" "$dir/$pass.err" || {
      echo "artifacts: $pass pass re-simulated campaigns:" >&2
      grep "campaigns:" "$dir/$pass.err" >&2 || true
      return 1
    }
    cmp "$dir/cold.txt" "$dir/$pass.txt" || {
      echo "artifacts: $pass render diverged from cold render" >&2
      return 1
    }
  done
  echo "artifacts: zero warm simulations, byte-identical renders"
}

hostile() {
  # Hostile-peer payload determinism: a campaign whose DNS responses and
  # SMTP replies are corrupted in flight (including content-level SPF
  # cycle / CNAME bait) must merge byte-identically for any shard count,
  # under kill-and-resume and through a store round-trip — and the fuzz
  # harness drives 100k mutated frames straight into the parsers with
  # zero panics and every rejection classified.
  echo "== tier-1: hostile-payload determinism (cargo test --test hostile_determinism) =="
  MAILVAL_QUIET=1 cargo test -q --test hostile_determinism
  echo "== fuzz: 100k mutated frames (mailval-artifacts fuzz) =="
  cargo run --release -q -p mailval-bench --bin mailval-artifacts -- fuzz 100000
}

io() {
  # Storage-fault determinism: campaigns under deterministic ENOSPC,
  # short writes, fsync/rename failures and read corruption must merge
  # byte-identically to a clean run for shards = 1/2/4/8, salvage exact
  # journal prefixes, survive kill-and-resume, and shed over-budget
  # sessions identically at any shard count — then the bench sweep
  # re-asserts hash equality across fault rates {0, .01, .05, .20}.
  echo "== tier-1: storage-fault determinism (cargo test --test io_determinism) =="
  MAILVAL_QUIET=1 cargo test -q --test io_determinism
  echo "== bench: storage-fault sweep (mailval-artifacts bench-io) =="
  local dir
  dir=$(mktemp -d)
  trap 'rm -rf "$dir"' RETURN
  cargo run --release -q -p mailval-bench --bin mailval-artifacts -- \
    bench-io "$dir/BENCH_io.json"
}

perf() {
  # Performance regression gate: re-run the bench-perf sweep (2k and
  # 20k domains at shards = 1/2/4/8) and fail if campaign setup exceeds
  # 30% of wall time or sessions/s drops more than 10% below the
  # committed baseline in results/BENCH_perf.json. The sweep also
  # asserts the merged output is identical across shard counts.
  echo "== perf: regression gate (mailval-artifacts bench-perf-check) =="
  cargo build --release -p mailval-bench --bin mailval-artifacts
  target/release/mailval-artifacts bench-perf-check
}

trace() {
  # Telemetry gates: the determinism test (byte-identical trace streams
  # at shards 1/2/4/8 and across kill-and-resume, identical metrics
  # merges, golden hashes unchanged with tracing on), a smoke export of
  # Chrome trace-event JSON from a ~100-session campaign, and the
  # bench-trace overhead gate (disabled tracer ≤1%, recording tracer
  # ≤10% vs the committed BENCH_perf.json baseline).
  echo "== tier-1: telemetry determinism (cargo test --test telemetry_determinism) =="
  MAILVAL_QUIET=1 cargo test -q --test telemetry_determinism
  echo "== trace: Chrome trace-event export smoke (mailval-artifacts trace) =="
  cargo build --release -p mailval-bench --bin mailval-artifacts
  local bin=target/release/mailval-artifacts
  local dir
  dir=$(mktemp -d)
  trap 'rm -rf "$dir"' RETURN
  MAILVAL_SCALE=0.004 MAILVAL_SEED=2021 MAILVAL_SHARDS=2 \
    "$bin" trace --out "$dir/trace.json"
  grep -q '"traceEvents"' "$dir/trace.json" || {
    echo "trace: export is not Chrome trace-event JSON" >&2
    return 1
  }
  MAILVAL_SCALE=0.004 MAILVAL_SEED=2021 MAILVAL_SHARDS=2 \
    "$bin" trace --metrics --out "$dir/metrics.json"
  grep -q '"counters"' "$dir/metrics.json" || {
    echo "trace: metrics export missing counters" >&2
    return 1
  }
  echo "== trace: overhead gate (mailval-artifacts bench-trace) =="
  "$bin" bench-trace "$dir/BENCH_trace.json"
}

if [[ "${1:-}" == "--chaos" ]]; then
  chaos
  echo "verify --chaos: OK"
  exit 0
fi

if [[ "${1:-}" == "--resume" ]]; then
  resume
  echo "verify --resume: OK"
  exit 0
fi

if [[ "${1:-}" == "--artifacts" ]]; then
  artifacts
  echo "verify --artifacts: OK"
  exit 0
fi

if [[ "${1:-}" == "--hostile" ]]; then
  hostile
  echo "verify --hostile: OK"
  exit 0
fi

if [[ "${1:-}" == "--io" ]]; then
  io
  echo "verify --io: OK"
  exit 0
fi

if [[ "${1:-}" == "--perf" ]]; then
  perf
  echo "verify --perf: OK"
  exit 0
fi

if [[ "${1:-}" == "--trace" ]]; then
  trace
  echo "verify --trace: OK"
  exit 0
fi

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q (MAILVAL_QUIET silences progress) =="
MAILVAL_QUIET=1 cargo test -q

chaos
resume
hostile
io
artifacts
perf
trace

echo "verify: OK"
