#!/usr/bin/env bash
# Full offline verification: formatting, lints, tier-1 build + tests,
# and the chaos determinism gate.
#
# Everything here must run without network access — the workspace has
# no registry dependencies (see the `proptest` feature note in the root
# Cargo.toml), and CARGO_NET_OFFLINE pins cargo to what is vendored.
#
# Usage:
#   scripts/verify.sh           # the full gate (fmt, clippy, build,
#                               # tests, chaos determinism)
#   scripts/verify.sh --chaos   # only the chaos determinism stage
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

chaos() {
  # Fault-injection determinism: a campaign under 5% datagram loss,
  # greylisting/stalling/resetting MTAs and one injected crash must
  # merge byte-identically for shards = 1/2/4/8, and the crash must be
  # contained to its own session. Fixed seeds live in the test itself.
  echo "== tier-1: chaos determinism (cargo test --test chaos_determinism) =="
  cargo test -q --test chaos_determinism
}

if [[ "${1:-}" == "--chaos" ]]; then
  chaos
  echo "verify --chaos: OK"
  exit 0
fi

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

chaos

echo "verify: OK"
