#!/usr/bin/env bash
# Full offline verification: formatting, lints, tier-1 build + tests,
# and the chaos determinism gate.
#
# Everything here must run without network access — the workspace has
# no registry dependencies (see the `proptest` feature note in the root
# Cargo.toml), and CARGO_NET_OFFLINE pins cargo to what is vendored.
#
# Usage:
#   scripts/verify.sh           # the full gate (fmt, clippy, build,
#                               # tests, chaos + resume determinism)
#   scripts/verify.sh --chaos   # only the chaos determinism stage
#   scripts/verify.sh --resume  # only the kill-and-resume stage
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

chaos() {
  # Fault-injection determinism: a campaign under 5% datagram loss,
  # greylisting/stalling/resetting MTAs and one injected crash must
  # merge byte-identically for shards = 1/2/4/8, and the crash must be
  # contained to its own session. Fixed seeds live in the test itself.
  echo "== tier-1: chaos determinism (cargo test --test chaos_determinism) =="
  cargo test -q --test chaos_determinism
}

resume() {
  # Supervision and durability: shards that crash mid-run (deterministic
  # crash_after_sessions injection) must restart from their journals and
  # merge byte-identically to an uninterrupted run for shards = 1/2/4/8,
  # with and without the chaos plan; corrupted journal tails are re-run,
  # not fatal; and session budgets terminate runaways within bounds.
  echo "== tier-1: kill-and-resume determinism (cargo test --test resume_determinism) =="
  cargo test -q --test resume_determinism
}

if [[ "${1:-}" == "--chaos" ]]; then
  chaos
  echo "verify --chaos: OK"
  exit 0
fi

if [[ "${1:-}" == "--resume" ]]; then
  resume
  echo "verify --resume: OK"
  exit 0
fi

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

chaos
resume

echo "verify: OK"
