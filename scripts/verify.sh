#!/usr/bin/env bash
# Full offline verification: formatting, lints, tier-1 build + tests.
#
# Everything here must run without network access — the workspace has
# no registry dependencies (see the `proptest` feature note in the root
# Cargo.toml), and CARGO_NET_OFFLINE pins cargo to what is vendored.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "verify: OK"
